#include "common/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace groupsa::parallel {
namespace {

// Counts how often each index in [0, n) is visited by a ParallelFor.
std::vector<int> VisitCounts(ThreadPool* pool, int64_t n, int64_t grain) {
  std::vector<std::atomic<int>> counts(n);
  for (auto& c : counts) c.store(0);
  pool->ParallelFor(0, n, grain, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  std::vector<int> result(n);
  for (int64_t i = 0; i < n; ++i) result[i] = counts[i].load();
  return result;
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  for (int64_t n : {1, 2, 7, 64, 1000}) {
    for (int64_t grain : {1, 3, 8, 100}) {
      const std::vector<int> counts = VisitCounts(&pool, n, grain);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(counts[i], 1) << "n=" << n << " grain=" << grain
                                << " index=" << i;
      }
    }
  }
}

TEST(ThreadPoolTest, SerialPoolVisitsEveryIndexOnce) {
  ThreadPool pool(1);
  const std::vector<int> counts = VisitCounts(&pool, 100, 7);
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 8, [&](int64_t, int64_t) { calls.fetch_add(1); });
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, RangeSmallerThanGrainRunsInOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 5, 100, [&](int64_t begin, int64_t end) {
    calls.fetch_add(1);
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(total.load(), 5);
}

TEST(ThreadPoolTest, NonZeroBeginCoversExactRange) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<int64_t> seen;
  pool.ParallelFor(10, 35, 4, [&](int64_t begin, int64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    for (int64_t i = begin; i < end; ++i) {
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " visited twice";
    }
  });
  EXPECT_EQ(seen.size(), 25u);
  EXPECT_EQ(*seen.begin(), 10);
  EXPECT_EQ(*seen.rbegin(), 34);
}

TEST(ThreadPoolTest, GrainOneSingleIndexChunks) {
  ThreadPool pool(4);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 100, 1, [&](int64_t begin, int64_t end) {
    EXPECT_EQ(end - begin, 1);
    sum.fetch_add(begin);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  // Outer loop spans more chunks than workers; each body issues another
  // ParallelFor. Nested calls from workers run inline (possibly as one
  // whole-range chunk), so this must finish and cover all work.
  pool.ParallelFor(0, 16, 1, [&](int64_t outer_begin, int64_t outer_end) {
    for (int64_t o = outer_begin; o < outer_end; ++o) {
      pool.ParallelFor(0, 8, 1, [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) total.fetch_add(i + 1);
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * 36);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 64, 1,
                       [&](int64_t begin, int64_t) {
                         if (begin == 17)
                           throw std::runtime_error("boom at 17");
                       }),
      std::runtime_error);
  // The pool must still be usable after an exception.
  const std::vector<int> counts = VisitCounts(&pool, 32, 4);
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ThreadPoolTest, GlobalPoolResizeAndQuery) {
  const int before = GlobalThreads();
  SetGlobalThreads(3);
  EXPECT_EQ(GlobalThreads(), 3);
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 50, 5, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 1225);
  SetGlobalThreads(before > 0 ? before : 1);
}

TEST(ThreadPoolTest, OnWorkerThreadFalseOnCaller) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(2);
  std::atomic<int> worker_hits{0};
  pool.ParallelFor(0, 64, 1, [&](int64_t, int64_t) {
    if (ThreadPool::OnWorkerThread()) worker_hits.fetch_add(1);
  });
  // The caller participates, so not every chunk runs on a pool worker, but
  // the flag must still be false here afterwards.
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  (void)worker_hits;
}

}  // namespace
}  // namespace groupsa::parallel
