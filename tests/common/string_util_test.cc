#include "common/string_util.h"

#include <gtest/gtest.h>

namespace groupsa {
namespace {

TEST(StrFormatTest, BasicFormatting) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
}

TEST(StrFormatTest, FloatPrecision) {
  EXPECT_EQ(StrFormat("%.3f", 1.23456), "1.235");
}

TEST(StrFormatTest, EmptyResult) { EXPECT_EQ(StrFormat("%s", ""), ""); }

TEST(StrFormatTest, LongString) {
  const std::string big(5000, 'a');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 5000u);
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrJoinTest, SingleElement) { EXPECT_EQ(StrJoin({"a"}, ","), "a"); }

TEST(StrJoinTest, Empty) { EXPECT_EQ(StrJoin({}, ","), ""); }

TEST(StrSplitTest, BasicSplit) {
  const auto parts = StrSplit("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrSplitTest, KeepsEmptyFields) {
  const auto parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StrSplitTest, NoDelimiter) {
  const auto parts = StrSplit("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrSplitTest, TrailingDelimiter) {
  const auto parts = StrSplit("a,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "");
}

TEST(StrTrimTest, TrimsBothEnds) {
  EXPECT_EQ(StrTrim("  hello \t\n"), "hello");
}

TEST(StrTrimTest, NoWhitespace) { EXPECT_EQ(StrTrim("abc"), "abc"); }

TEST(StrTrimTest, AllWhitespace) { EXPECT_EQ(StrTrim(" \t "), ""); }

TEST(StrTrimTest, InternalWhitespacePreserved) {
  EXPECT_EQ(StrTrim(" a b "), "a b");
}

}  // namespace
}  // namespace groupsa
