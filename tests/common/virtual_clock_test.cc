#include "common/virtual_clock.h"

#include <gtest/gtest.h>

namespace groupsa {
namespace {

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0u);
  EXPECT_EQ(clock.Advance(), 1u);
  EXPECT_EQ(clock.Now(), 1u);
  EXPECT_EQ(clock.Advance(5), 6u);
  EXPECT_EQ(clock.Now(), 6u);
}

TEST(VirtualClockTest, ExpiryIsStrictAndZeroMeansNoDeadline) {
  // A deadline of 0 never expires, whatever `now` says.
  EXPECT_FALSE(DeadlineExpired(0, 0));
  EXPECT_FALSE(DeadlineExpired(0, 1'000'000));
  // A budget of N ticks grants N full ticks: at now == deadline the request
  // is still alive; one tick later it is not.
  EXPECT_FALSE(DeadlineExpired(10, 9));
  EXPECT_FALSE(DeadlineExpired(10, 10));
  EXPECT_TRUE(DeadlineExpired(10, 11));
}

TEST(VirtualClockTest, DeadlineFromBudget) {
  EXPECT_EQ(DeadlineFromBudget(/*now=*/7, /*budget_ticks=*/0), 0u);
  EXPECT_EQ(DeadlineFromBudget(/*now=*/7, /*budget_ticks=*/3), 10u);
  // The resolved deadline honors the strict-expiry convention end to end.
  const uint64_t deadline = DeadlineFromBudget(5, 2);
  EXPECT_FALSE(DeadlineExpired(deadline, 7));
  EXPECT_TRUE(DeadlineExpired(deadline, 8));
}

TEST(VirtualClockTest, DescribeExpiryNamesOnlyTheDeadline) {
  // The string must not mention when expiry was *observed*: that tick
  // depends on worker interleaving and these strings land in transcripts
  // compared byte-for-byte across worker counts.
  EXPECT_EQ(DescribeExpiry(42), "deadline tick 42 expired");
  EXPECT_EQ(DescribeExpiry(42), DescribeExpiry(42));
}

}  // namespace
}  // namespace groupsa
