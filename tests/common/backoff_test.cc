#include "common/backoff.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace groupsa {
namespace {

BackoffPolicy NoJitter() {
  BackoffPolicy p;
  p.base_ticks = 2;
  p.max_ticks = 64;
  p.jitter = 0.0;
  return p;
}

TEST(BackoffTest, ExponentialWithoutJitterUpToTheCap) {
  const BackoffPolicy p = NoJitter();
  EXPECT_EQ(BackoffDelayTicks(p, /*key=*/1, /*attempt=*/0), 2u);
  EXPECT_EQ(BackoffDelayTicks(p, 1, 1), 4u);
  EXPECT_EQ(BackoffDelayTicks(p, 1, 2), 8u);
  EXPECT_EQ(BackoffDelayTicks(p, 1, 4), 32u);
  EXPECT_EQ(BackoffDelayTicks(p, 1, 5), 64u);   // hits the cap exactly
  EXPECT_EQ(BackoffDelayTicks(p, 1, 6), 64u);   // capped
  EXPECT_EQ(BackoffDelayTicks(p, 1, 20), 64u);  // still capped
}

TEST(BackoffTest, HugeAttemptSaturatesInsteadOfOverflowing) {
  const BackoffPolicy p = NoJitter();
  // A shift of >= 63 would be UB / wraparound on the raw expression; the
  // implementation must saturate to max_ticks instead.
  EXPECT_EQ(BackoffDelayTicks(p, 1, 62), 64u);
  EXPECT_EQ(BackoffDelayTicks(p, 1, 63), 64u);
  EXPECT_EQ(BackoffDelayTicks(p, 1, 1000), 64u);
}

TEST(BackoffTest, JitterStaysInsideItsBand) {
  BackoffPolicy p;
  p.base_ticks = 4;
  p.max_ticks = 256;
  p.jitter = 0.5;
  for (uint64_t key = 0; key < 50; ++key) {
    for (int attempt = 0; attempt < 7; ++attempt) {
      const uint64_t raw =
          std::min(p.max_ticks, p.base_ticks << attempt);
      const uint64_t lo = static_cast<uint64_t>(
          std::ceil(static_cast<double>(raw) * (1.0 - p.jitter)));
      const uint64_t d = BackoffDelayTicks(p, key, attempt);
      EXPECT_GE(d, std::max<uint64_t>(1, lo)) << key << "/" << attempt;
      EXPECT_LE(d, raw) << key << "/" << attempt;
    }
  }
}

TEST(BackoffTest, DelayNeverJittersBelowOneTick) {
  BackoffPolicy p;
  p.base_ticks = 1;
  p.jitter = 1.0;  // jitter may remove the whole delay...
  for (uint64_t key = 0; key < 200; ++key)
    EXPECT_GE(BackoffDelayTicks(p, key, 0), 1u);  // ...but never below 1
}

TEST(BackoffTest, PureFunctionOfPolicyKeyAndAttempt) {
  BackoffPolicy p;
  p.jitter = 0.5;
  for (uint64_t key = 0; key < 20; ++key) {
    for (int attempt = 0; attempt < 5; ++attempt) {
      const uint64_t first = BackoffDelayTicks(p, key, attempt);
      // Recomputing (any number of times, in any order) yields the same
      // delay: there is no hidden stream state.
      EXPECT_EQ(BackoffDelayTicks(p, key, attempt), first);
      EXPECT_EQ(BackoffDelayTicks(p, key, attempt), first);
    }
  }
}

TEST(BackoffTest, KeysDrawFromDecorrelatedStreams) {
  BackoffPolicy p;
  p.base_ticks = 16;
  p.max_ticks = 1024;
  p.jitter = 0.5;
  // Different keys must not all draw the same jitter (else synchronized
  // retry storms stay synchronized). With a /2-wide band over 64 keys,
  // identical draws across the board would be astronomically unlikely.
  bool any_different = false;
  const uint64_t first = BackoffDelayTicks(p, 0, 3);
  for (uint64_t key = 1; key < 64 && !any_different; ++key)
    any_different = BackoffDelayTicks(p, key, 3) != first;
  EXPECT_TRUE(any_different);
}

TEST(BackoffTest, DifferentSeedsReshuffleTheJitter) {
  BackoffPolicy a;
  a.base_ticks = 16;
  a.max_ticks = 1024;
  a.jitter = 0.5;
  BackoffPolicy b = a;
  b.seed = a.seed + 1;
  bool any_different = false;
  for (uint64_t key = 0; key < 64 && !any_different; ++key)
    any_different =
        BackoffDelayTicks(a, key, 2) != BackoffDelayTicks(b, key, 2);
  EXPECT_TRUE(any_different);
}

TEST(BackoffTest, TotalIsTheSumOfPerAttemptDelays) {
  BackoffPolicy p;
  p.base_ticks = 2;
  p.max_ticks = 32;
  p.jitter = 0.5;
  for (uint64_t key = 0; key < 10; ++key) {
    uint64_t sum = 0;
    for (int attempt = 0; attempt < 6; ++attempt) {
      sum += BackoffDelayTicks(p, key, attempt);
      EXPECT_EQ(TotalBackoffTicks(p, key, attempt + 1), sum) << key;
    }
  }
  EXPECT_EQ(TotalBackoffTicks(p, 3, 0), 0u);
}

}  // namespace
}  // namespace groupsa
