#include "common/logging.h"

#include <gtest/gtest.h>

namespace groupsa {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, LogDoesNotCrashAtAnyLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);  // suppress output during the test
  LogDebug("debug message");
  LogInfo("info message");
  LogWarning("warning message");
  LogError("error message");
  SetLogLevel(original);
}

}  // namespace
}  // namespace groupsa
