#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace groupsa {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(7);
  double total = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) total += rng.NextDouble();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(RngTest, NextIntBounds) {
  Rng rng(3);
  for (int bound : {1, 2, 7, 100}) {
    for (int i = 0; i < 1000; ++i) {
      const int v = rng.NextInt(bound);
      EXPECT_GE(v, 0);
      EXPECT_LT(v, bound);
    }
  }
}

TEST(RngTest, NextIntCoversAllValues) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NextUniformRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  constexpr int kN = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(13);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, WeightedRespectsZeroWeights) {
  Rng rng(19);
  const std::vector<double> weights = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) {
    const int pick = rng.NextWeighted(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(RngTest, WeightedProportions) {
  Rng rng(23);
  const std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ones += rng.NextWeighted(weights) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.75, 0.01);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(29);
  std::vector<int> values(100);
  for (int i = 0; i < 100; ++i) values[i] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, values);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(31);
  const std::vector<int> sample = rng.SampleWithoutReplacement(10, 10);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(31);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng forked = a.Fork();
  // The fork differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextU64() == forked.NextU64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, StreamSeedReproducible) {
  for (uint64_t stream = 0; stream < 16; ++stream) {
    EXPECT_EQ(Rng::StreamSeed(42, stream), Rng::StreamSeed(42, stream));
  }
}

TEST(RngTest, StreamSeedsDistinct) {
  // Streams of the same seed, and the same stream of nearby seeds, must all
  // produce distinct derived seeds — this is what keeps per-shard RNGs from
  // colliding in the sharded trainer.
  std::set<uint64_t> seeds;
  for (uint64_t seed : {0ull, 1ull, 42ull, ~0ull}) {
    for (uint64_t stream = 0; stream < 64; ++stream) {
      seeds.insert(Rng::StreamSeed(seed, stream));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 64u);
}

TEST(RngTest, SplitStreamsReproducible) {
  std::vector<Rng> a = Rng::Split(7, 4);
  std::vector<Rng> b = Rng::Split(7, 4);
  ASSERT_EQ(a.size(), 4u);
  ASSERT_EQ(b.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a[s].NextU64(), b[s].NextU64());
  }
}

TEST(RngTest, SplitStreamsDoNotOverlap) {
  // Draw a long prefix from each stream; across streams the draws must be
  // (statistically) disjoint. With 64-bit outputs, any collision in a few
  // thousand draws would indicate correlated streams.
  std::vector<Rng> streams = Rng::Split(99, 8);
  std::set<uint64_t> seen;
  size_t expected = 0;
  for (Rng& rng : streams) {
    for (int i = 0; i < 2000; ++i) {
      seen.insert(rng.NextU64());
      ++expected;
    }
  }
  EXPECT_EQ(seen.size(), expected);
}

TEST(RngTest, SplitStreamsIndependentOfCount) {
  // Stream s is the same whether the seed is split 2 or 8 ways: shard RNGs
  // must not depend on how many shards run concurrently.
  std::vector<Rng> narrow = Rng::Split(55, 2);
  std::vector<Rng> wide = Rng::Split(55, 8);
  for (int s = 0; s < 2; ++s) {
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(narrow[s].NextU64(), wide[s].NextU64());
  }
}

}  // namespace
}  // namespace groupsa
