// Edge cases for the full-catalog top-K selector: the serving paths lean on
// TopKItems behaving sanely at the boundaries (k past the catalog, k == 0,
// ties, skip filters that eat everything), because requests arriving at the
// daemon can put any of these in play.

#include "core/topk.h"

#include <gtest/gtest.h>

#include <vector>

namespace groupsa::core {
namespace {

TEST(TopKItemsTest, RanksByScoreDescendingThenIdAscending) {
  const std::vector<double> scores = {0.5, 2.0, 1.0, 2.0};
  const auto ranked = TopKItems(scores, 4);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].first, 1);  // 2.0, lower id wins the tie
  EXPECT_EQ(ranked[1].first, 3);  // 2.0
  EXPECT_EQ(ranked[2].first, 2);  // 1.0
  EXPECT_EQ(ranked[3].first, 0);  // 0.5
  EXPECT_DOUBLE_EQ(ranked[0].second, 2.0);
}

TEST(TopKItemsTest, KLargerThanCatalogReturnsWholeCatalog) {
  const std::vector<double> scores = {3.0, 1.0, 2.0};
  const auto ranked = TopKItems(scores, 100);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, 0);
  EXPECT_EQ(ranked[1].first, 2);
  EXPECT_EQ(ranked[2].first, 1);
}

TEST(TopKItemsTest, NonPositiveKIsEmpty) {
  const std::vector<double> scores = {3.0, 1.0};
  EXPECT_TRUE(TopKItems(scores, 0).empty());
  EXPECT_TRUE(TopKItems(scores, -5).empty());
}

TEST(TopKItemsTest, AllTiedScoresComeBackInIdOrder) {
  const std::vector<double> scores(7, 1.25);
  const auto ranked = TopKItems(scores, 5);
  ASSERT_EQ(ranked.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ranked[static_cast<size_t>(i)].first, i);
    EXPECT_DOUBLE_EQ(ranked[static_cast<size_t>(i)].second, 1.25);
  }
}

TEST(TopKItemsTest, SkipDropsItemsBeforeRanking) {
  const std::vector<double> scores = {5.0, 4.0, 3.0, 2.0};
  const auto ranked =
      TopKItems(scores, 3, [](data::ItemId item) { return item % 2 == 0; });
  ASSERT_EQ(ranked.size(), 2u);  // only odd items survive
  EXPECT_EQ(ranked[0].first, 1);
  EXPECT_EQ(ranked[1].first, 3);
}

TEST(TopKItemsTest, SkipEverythingYieldsEmptyNotError) {
  const std::vector<double> scores = {5.0, 4.0, 3.0};
  const auto ranked = TopKItems(scores, 2, [](data::ItemId) { return true; });
  EXPECT_TRUE(ranked.empty());
}

TEST(TopKItemsTest, EmptyCatalogYieldsEmpty) {
  EXPECT_TRUE(TopKItems({}, 3).empty());
}

TEST(TopKItemsTest, SelectionMatchesFullSortTruncation) {
  // The nth_element cut must be invisible: identical to sort-everything.
  std::vector<double> scores;
  for (int i = 0; i < 257; ++i)
    scores.push_back(static_cast<double>((i * 7919) % 101));  // many ties
  const auto selected = TopKItems(scores, 10);
  const auto full = TopKItems(scores, static_cast<int>(scores.size()));
  ASSERT_EQ(selected.size(), 10u);
  for (size_t i = 0; i < selected.size(); ++i) {
    EXPECT_EQ(selected[i].first, full[i].first);
    EXPECT_DOUBLE_EQ(selected[i].second, full[i].second);
  }
}

TEST(AllItemsTest, IdentityCatalog) {
  const auto items = AllItems(4);
  ASSERT_EQ(items.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(items[static_cast<size_t>(i)], i);
  EXPECT_TRUE(AllItems(0).empty());
}

}  // namespace
}  // namespace groupsa::core
