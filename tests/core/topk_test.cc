// Edge cases for the full-catalog top-K selector: the serving paths lean on
// TopKItems behaving sanely at the boundaries (k past the catalog, k == 0,
// ties, skip filters that eat everything), because requests arriving at the
// daemon can put any of these in play.

#include "core/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

namespace groupsa::core {
namespace {

TEST(TopKItemsTest, RanksByScoreDescendingThenIdAscending) {
  const std::vector<double> scores = {0.5, 2.0, 1.0, 2.0};
  const auto ranked = TopKItems(scores, 4);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].first, 1);  // 2.0, lower id wins the tie
  EXPECT_EQ(ranked[1].first, 3);  // 2.0
  EXPECT_EQ(ranked[2].first, 2);  // 1.0
  EXPECT_EQ(ranked[3].first, 0);  // 0.5
  EXPECT_DOUBLE_EQ(ranked[0].second, 2.0);
}

TEST(TopKItemsTest, KLargerThanCatalogReturnsWholeCatalog) {
  const std::vector<double> scores = {3.0, 1.0, 2.0};
  const auto ranked = TopKItems(scores, 100);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, 0);
  EXPECT_EQ(ranked[1].first, 2);
  EXPECT_EQ(ranked[2].first, 1);
}

TEST(TopKItemsTest, NonPositiveKIsEmpty) {
  const std::vector<double> scores = {3.0, 1.0};
  EXPECT_TRUE(TopKItems(scores, 0).empty());
  EXPECT_TRUE(TopKItems(scores, -5).empty());
}

TEST(TopKItemsTest, AllTiedScoresComeBackInIdOrder) {
  const std::vector<double> scores(7, 1.25);
  const auto ranked = TopKItems(scores, 5);
  ASSERT_EQ(ranked.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(ranked[static_cast<size_t>(i)].first, i);
    EXPECT_DOUBLE_EQ(ranked[static_cast<size_t>(i)].second, 1.25);
  }
}

TEST(TopKItemsTest, SkipDropsItemsBeforeRanking) {
  const std::vector<double> scores = {5.0, 4.0, 3.0, 2.0};
  const auto ranked =
      TopKItems(scores, 3, [](data::ItemId item) { return item % 2 == 0; });
  ASSERT_EQ(ranked.size(), 2u);  // only odd items survive
  EXPECT_EQ(ranked[0].first, 1);
  EXPECT_EQ(ranked[1].first, 3);
}

TEST(TopKItemsTest, SkipEverythingYieldsEmptyNotError) {
  const std::vector<double> scores = {5.0, 4.0, 3.0};
  const auto ranked = TopKItems(scores, 2, [](data::ItemId) { return true; });
  EXPECT_TRUE(ranked.empty());
}

TEST(TopKItemsTest, EmptyCatalogYieldsEmpty) {
  EXPECT_TRUE(TopKItems({}, 3).empty());
}

TEST(TopKItemsTest, SelectionMatchesFullSortTruncation) {
  // The nth_element cut must be invisible: identical to sort-everything.
  std::vector<double> scores;
  for (int i = 0; i < 257; ++i)
    scores.push_back(static_cast<double>((i * 7919) % 101));  // many ties
  const auto selected = TopKItems(scores, 10);
  const auto full = TopKItems(scores, static_cast<int>(scores.size()));
  ASSERT_EQ(selected.size(), 10u);
  for (size_t i = 0; i < selected.size(); ++i) {
    EXPECT_EQ(selected[i].first, full[i].first);
    EXPECT_DOUBLE_EQ(selected[i].second, full[i].second);
  }
}

TEST(BetterRankedTest, IsAStrictTotalOrder) {
  using P = std::pair<data::ItemId, double>;
  EXPECT_TRUE(BetterRanked(P{0, 2.0}, P{1, 1.0}));   // score wins
  EXPECT_FALSE(BetterRanked(P{0, 1.0}, P{1, 2.0}));
  EXPECT_TRUE(BetterRanked(P{3, 1.0}, P{7, 1.0}));   // tie: ascending id
  EXPECT_FALSE(BetterRanked(P{7, 1.0}, P{3, 1.0}));
  EXPECT_FALSE(BetterRanked(P{5, 1.0}, P{5, 1.0}));  // irreflexive
}

// --------------------------------------------------------------------------
// Subset overload (candidate re-ranking)
// --------------------------------------------------------------------------

TEST(TopKSubsetTest, MatchesFullCatalogWhenSubsetCoversEverything) {
  const std::vector<double> catalog_scores = {0.5, 2.0, 1.0, 2.0, -1.0};
  // Candidate ids arrive in arbitrary (probe) order with their own score
  // layout; covering the whole catalog must reproduce the full overload
  // exactly.
  const std::vector<data::ItemId> items = {3, 0, 4, 1, 2};
  std::vector<double> scores;
  for (data::ItemId item : items)
    scores.push_back(catalog_scores[static_cast<size_t>(item)]);
  const auto subset = TopKItems(items, scores, 3);
  const auto full = TopKItems(catalog_scores, 3);
  ASSERT_EQ(subset.size(), full.size());
  for (size_t i = 0; i < subset.size(); ++i) {
    EXPECT_EQ(subset[i].first, full[i].first);
    EXPECT_DOUBLE_EQ(subset[i].second, full[i].second);
  }
}

TEST(TopKSubsetTest, TieHeavySubsetBreaksTiesByAscendingId) {
  // Equal scores everywhere, shuffled candidate order: ids must come back
  // ascending regardless of input order — on both the nth_element path
  // (k < size) and the full-sort path (k >= size).
  const std::vector<data::ItemId> items = {9, 2, 7, 0, 5, 3};
  const std::vector<double> scores(items.size(), 4.0);
  for (int k : {3, 6, 100}) {
    SCOPED_TRACE(::testing::Message() << "k=" << k);
    const auto ranked = TopKItems(items, scores, k);
    std::vector<data::ItemId> sorted = items;
    std::sort(sorted.begin(), sorted.end());
    const size_t want = std::min<size_t>(items.size(), static_cast<size_t>(k));
    ASSERT_EQ(ranked.size(), want);
    for (size_t i = 0; i < want; ++i) EXPECT_EQ(ranked[i].first, sorted[i]);
  }
}

TEST(TopKSubsetTest, SkipAndBoundaries) {
  const std::vector<data::ItemId> items = {4, 1, 8};
  const std::vector<double> scores = {3.0, 2.0, 1.0};
  const auto ranked =
      TopKItems(items, scores, 5, [](data::ItemId item) { return item == 4; });
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first, 1);
  EXPECT_EQ(ranked[1].first, 8);
  EXPECT_TRUE(TopKItems(items, scores, 0).empty());
  EXPECT_TRUE(TopKItems(std::vector<data::ItemId>{}, std::vector<double>{}, 3)
                  .empty());
}

TEST(TopKItemsTest, TieHeavyNthElementCutMatchesFullSort) {
  // Only two distinct scores across a big catalog: the nth_element boundary
  // lands inside a tie run, where an unstable cut without the id tie-break
  // would reorder. Regression for the deterministic-tie contract.
  std::vector<double> scores(301);
  for (size_t i = 0; i < scores.size(); ++i) scores[i] = (i % 3 == 0) ? 2 : 1;
  const auto selected = TopKItems(scores, 150);
  const auto full = TopKItems(scores, static_cast<int>(scores.size()));
  ASSERT_EQ(selected.size(), 150u);
  for (size_t i = 0; i < selected.size(); ++i) {
    EXPECT_EQ(selected[i].first, full[i].first);
    EXPECT_DOUBLE_EQ(selected[i].second, full[i].second);
  }
  // Inside each score band, ids ascend.
  for (size_t i = 1; i < selected.size(); ++i) {
    if (selected[i].second == selected[i - 1].second) {
      EXPECT_LT(selected[i - 1].first, selected[i].first);
    }
  }
}

TEST(AllItemsTest, IdentityCatalog) {
  const auto items = AllItems(4);
  ASSERT_EQ(items.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(items[static_cast<size_t>(i)], i);
  EXPECT_TRUE(AllItems(0).empty());
}

}  // namespace
}  // namespace groupsa::core
