// ItemIndex / TopKMode::kIvf suite: quantizer structure, build determinism
// across thread counts (race-labelled for the TSan lane), value-version
// invalidation after real optimizer steps, the structural exact-parity
// contract (nprobe = nlist bit-identical to kExact), empty/tiny catalogs,
// and recall@10 against exact top-K on a seeded synthetic world.

#include "core/item_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/inference_engine.h"
#include "core/fast_recommender.h"
#include "core/test_fixtures.h"
#include "core/topk.h"
#include "core/trainer.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

GroupSaConfig SmallConfig() {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  return c;
}

// Runs `body` at pool widths 1 and 4, restoring the serial default after.
void AtThreads(const std::function<void()>& body) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    parallel::SetGlobalThreads(threads);
    body();
  }
  parallel::SetGlobalThreads(1);
}

tensor::Matrix RandomTable(int rows, int cols, uint64_t seed) {
  tensor::Matrix m(rows, cols);
  Rng rng(seed);
  m.FillGaussian(&rng, 0.0f, 1.0f);
  return m;
}

bool SameBits(const tensor::Matrix& a, const tensor::Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<size_t>(a.size())) == 0;
}

bool SameBits(const std::vector<std::pair<data::ItemId, double>>& a,
              const std::vector<std::pair<data::ItemId, double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first) return false;
    if (std::memcmp(&a[i].second, &b[i].second, sizeof(double)) != 0)
      return false;
  }
  return true;
}

TEST(ItemIndexTest, ListsPartitionTheCatalogInAscendingOrder) {
  const tensor::Matrix table = RandomTable(200, 6, /*seed=*/9);
  ItemIndexConfig config;
  config.nlist = 12;
  const ItemIndex index = ItemIndex::Build(table, config);

  ASSERT_EQ(index.num_items(), 200);
  ASSERT_EQ(index.nlist(), 12);
  ASSERT_EQ(index.assignments().size(), 200u);

  std::set<data::ItemId> seen;
  int total = 0;
  for (int c = 0; c < index.nlist(); ++c) {
    const data::ItemId* items = index.ListBegin(c);
    const int size = index.ListSize(c);
    total += size;
    for (int i = 0; i < size; ++i) {
      if (i > 0) {
        EXPECT_LT(items[i - 1], items[i]) << "list " << c;
      }
      EXPECT_TRUE(seen.insert(items[i]).second) << "duplicate " << items[i];
      EXPECT_EQ(index.assignments()[static_cast<size_t>(items[i])], c);
    }
  }
  EXPECT_EQ(total, 200);
  EXPECT_EQ(seen.size(), 200u);
}

TEST(ItemIndexRaceTest, BuildIsBitIdenticalAcrossThreadCounts) {
  const tensor::Matrix table = RandomTable(300, 8, /*seed=*/17);
  ItemIndexConfig config;
  config.nlist = 16;

  parallel::SetGlobalThreads(1);
  const ItemIndex serial = ItemIndex::Build(table, config);
  AtThreads([&] {
    const ItemIndex index = ItemIndex::Build(table, config);
    EXPECT_TRUE(SameBits(index.centroids(), serial.centroids()));
    EXPECT_EQ(index.assignments(), serial.assignments());
    for (int c = 0; c < index.nlist(); ++c)
      ASSERT_EQ(index.ListSize(c), serial.ListSize(c));
  });
}

TEST(ItemIndexTest, EmptyCatalogYieldsEmptyIndex) {
  const ItemIndex index = ItemIndex::Build(tensor::Matrix(), ItemIndexConfig{});
  EXPECT_EQ(index.num_items(), 0);
  EXPECT_EQ(index.nlist(), 0);
  EXPECT_TRUE(index.SelectProbes({}, 4).empty());
  EXPECT_TRUE(index.Candidates({}).empty());
}

TEST(ItemIndexTest, TinyCatalogClampsNlistBelowItems) {
  // Fewer items than the requested nlist: the build must degrade, not fail,
  // and probing everything must still return the whole catalog.
  const tensor::Matrix table = RandomTable(3, 4, /*seed=*/5);
  ItemIndexConfig config;
  config.nlist = 8;
  const ItemIndex index = ItemIndex::Build(table, config);
  ASSERT_LE(index.nlist(), 3);
  ASSERT_GE(index.nlist(), 1);

  std::vector<double> scores(static_cast<size_t>(index.nlist()), 0.0);
  const std::vector<data::ItemId> all =
      index.Candidates(index.SelectProbes(scores, index.nlist()));
  std::vector<data::ItemId> sorted = all;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<data::ItemId>{0, 1, 2}));
}

TEST(ItemIndexTest, SingleItemCatalog) {
  const ItemIndex index =
      ItemIndex::Build(RandomTable(1, 4, /*seed=*/2), ItemIndexConfig{});
  EXPECT_EQ(index.nlist(), 1);
  EXPECT_EQ(index.Candidates(index.SelectProbes({0.0}, 1)),
            (std::vector<data::ItemId>{0}));
}

TEST(ItemIndexTest, SelectProbesRanksByScoreThenListId) {
  // Four tight, well-separated blobs guarantee four non-empty lists, so the
  // expectations below depend only on the scores handed to SelectProbes.
  tensor::Matrix table(64, 4);
  Rng rng(3);
  table.FillGaussian(&rng, 0.0f, 0.05f);
  for (int r = 0; r < table.rows(); ++r) {
    table.At(r, 0) += static_cast<float>(100 * (r % 4));
  }
  ItemIndexConfig config;
  config.nlist = 4;
  const ItemIndex index = ItemIndex::Build(table, config);
  ASSERT_EQ(index.nlist(), 4);
  for (int c = 0; c < 4; ++c) ASSERT_GT(index.ListSize(c), 0);

  // Tie between lists 1 and 3: ascending list id must win.
  const std::vector<double> scores = {0.5, 2.0, -1.0, 2.0};
  EXPECT_EQ(index.SelectProbes(scores, 3), (std::vector<int>{1, 3, 0}));
  // nprobe past the list count clamps to everything.
  EXPECT_EQ(index.SelectProbes(scores, 100),
            (std::vector<int>{1, 3, 0, 2}));
}

TEST(ItemIndexTest, ListMeansMatchesNaiveDoubleMean) {
  const tensor::Matrix vectors = RandomTable(50, 5, /*seed=*/23);
  ItemIndexConfig config;
  config.nlist = 6;
  const ItemIndex index = ItemIndex::Build(vectors, config);
  const tensor::Matrix payload = RandomTable(50, 3, /*seed=*/29);
  const tensor::Matrix means = index.ListMeans(payload);
  ASSERT_EQ(means.rows(), index.nlist());
  ASSERT_EQ(means.cols(), 3);

  for (int c = 0; c < index.nlist(); ++c) {
    for (int col = 0; col < 3; ++col) {
      double sum = 0.0;
      for (int i = 0; i < index.ListSize(c); ++i)
        sum += static_cast<double>(payload.At(index.ListBegin(c)[i], col));
      const float want =
          index.ListSize(c) == 0
              ? 0.0f
              : static_cast<float>(sum / index.ListSize(c));
      EXPECT_EQ(means.At(c, col), want) << "list " << c << " col " << col;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

// Full-probe config: nprobe = nlist makes the candidate set the whole
// catalog, so kIvf must be structurally bit-identical to kExact.
ItemIndexConfig FullProbeConfig(int nlist) {
  ItemIndexConfig config;
  config.nlist = nlist;
  config.nprobe = nlist;
  return config;
}

TEST(ItemIndexRaceTest, IvfFullProbeBitIdenticalToExactTopK) {
  for (bool wide_attention : {false, true}) {
    SCOPED_TRACE(::testing::Message() << "wide=" << wide_attention);
    GroupSaConfig config = SmallConfig();
    // Cover both the fused and the buffered attention paths.
    if (wide_attention) config.attention_hidden = 144;
    const TinyFixture f = TinyFixture::Make(config);
    auto model = f.MakeModel(config);
    InferenceEngine& engine = model->inference();
    engine.set_index_config(FullProbeConfig(10));

    AtThreads([&] {
      engine.set_topk_mode(TopKMode::kExact);
      const auto exact_user = engine.RecommendForUser(3, 10, &f.ui_train);
      const auto exact_group = engine.RecommendForGroup(5, 10, &f.gi_train);
      const auto exact_members =
          engine.RecommendForMembers({1, 4, 9}, 10, &f.ui_train);

      engine.set_topk_mode(TopKMode::kIvf);
      EXPECT_TRUE(
          SameBits(engine.RecommendForUser(3, 10, &f.ui_train), exact_user));
      EXPECT_TRUE(SameBits(engine.RecommendForGroup(5, 10, &f.gi_train),
                           exact_group));
      EXPECT_TRUE(SameBits(
          engine.RecommendForMembers({1, 4, 9}, 10, &f.ui_train),
          exact_members));
    });
  }
}

TEST(ItemIndexTest, FastRecommenderFullProbeBitIdenticalToExact) {
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  model->inference().set_index_config(FullProbeConfig(8));
  FastGroupRecommender fast(model.get());

  const std::vector<data::UserId> members = {2, 6, 10};
  const auto exact = fast.RecommendForMembers(members, 10, &f.ui_train);
  fast.set_topk_mode(TopKMode::kIvf);
  EXPECT_TRUE(SameBits(fast.RecommendForMembers(members, 10, &f.ui_train),
                       exact));
}

TEST(ItemIndexTest, IndexInvalidatedByOptimizerStep) {
  const GroupSaConfig config = SmallConfig();
  TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  InferenceEngine& engine = model->inference();
  engine.set_index_config(FullProbeConfig(10));
  engine.set_topk_mode(TopKMode::kIvf);

  const auto index_before = engine.GetOrBuildIndex();
  const auto rec_before = engine.RecommendForGroup(0, 10, nullptr);
  // The cached state is reused while parameters stand still.
  EXPECT_EQ(engine.GetOrBuildIndex().get(), index_before.get());

  // Real gradients, real Adam steps.
  Rng rng(7);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  trainer.RunGroupEpoch();

  // The stale index must not survive the version bump, and the rebuilt one
  // must rank with the NEW parameters: full-probe IVF still bit-matches the
  // exact path post-step.
  const auto index_after = engine.GetOrBuildIndex();
  EXPECT_NE(index_after.get(), index_before.get());
  const auto ivf_after = engine.RecommendForGroup(0, 10, nullptr);
  engine.set_topk_mode(TopKMode::kExact);
  EXPECT_TRUE(SameBits(ivf_after, engine.RecommendForGroup(0, 10, nullptr)));
  EXPECT_FALSE(SameBits(ivf_after, rec_before));
}

TEST(ItemIndexTest, SetIndexConfigDropsTheBuiltIndex) {
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  InferenceEngine& engine = model->inference();
  engine.set_index_config(FullProbeConfig(10));
  const auto first = engine.GetOrBuildIndex();
  EXPECT_EQ(first->nlist(), 10);
  engine.set_index_config(FullProbeConfig(5));
  const auto second = engine.GetOrBuildIndex();
  EXPECT_NE(second.get(), first.get());
  EXPECT_EQ(second->nlist(), 5);
}

// ---------------------------------------------------------------------------
// Recall on a seeded world
// ---------------------------------------------------------------------------

// A larger-catalog world so approximate probing has room to miss: 600 items,
// deterministic seed, model at init (scores are a fixed function of the
// seeds).
struct RecallFixture {
  data::SyntheticWorld world;
  data::Split ui;
  data::Split gi;
  data::InteractionMatrix ui_train;
  data::InteractionMatrix gi_train;
  ModelData model_data;
  std::unique_ptr<GroupSaModel> model;

  explicit RecallFixture(const GroupSaConfig& config) {
    data::SyntheticWorldConfig wc = data::SyntheticWorldConfig::Tiny();
    wc.name = "recall";
    wc.num_users = 150;
    wc.num_items = 600;
    wc.num_groups = 60;
    world = data::GenerateWorld(wc);
    Rng rng(5);
    ui = data::SplitEdges(world.dataset.user_item, 0.2, 0.0, &rng);
    gi = data::GlobalSplitEdges(world.dataset.group_item, 0.2, 0.0, &rng);
    ui_train = data::InteractionMatrix(world.dataset.num_users,
                                       world.dataset.num_items, ui.train);
    gi_train = data::InteractionMatrix(world.dataset.groups.num_groups(),
                                       world.dataset.num_items, gi.train);
    model_data.groups = &world.dataset.groups;
    model_data.social = &world.dataset.social;
    model_data.top_items = data::TopItemsPerUser(ui_train, config.top_h);
    model_data.top_friends =
        data::TopFriendsPerUser(world.dataset.social, config.top_h);
    Rng model_rng(11);
    model = std::make_unique<GroupSaModel>(config, world.dataset.num_users,
                                           world.dataset.num_items,
                                           model_data, &model_rng);
  }
};

double RecallAtK(const std::vector<std::pair<data::ItemId, double>>& exact,
                 const std::vector<std::pair<data::ItemId, double>>& approx) {
  if (exact.empty()) return 1.0;
  std::set<data::ItemId> want;
  for (const auto& [item, score] : exact) want.insert(item);
  int hit = 0;
  for (const auto& [item, score] : approx)
    hit += want.count(item) ? 1 : 0;
  return static_cast<double>(hit) / static_cast<double>(want.size());
}

TEST(ItemIndexTest, RecallAtTenOnSeededWorld) {
  const GroupSaConfig config = SmallConfig();
  RecallFixture f(config);
  InferenceEngine& engine = f.model->inference();
  // A genuinely approximate setting: probe 12 of 48 lists (a quarter of the
  // catalog per query).
  ItemIndexConfig index_config;
  index_config.nlist = 48;
  index_config.nprobe = 12;
  engine.set_index_config(index_config);

  double user_recall = 0.0;
  double group_recall = 0.0;
  const int num_users = 20;
  const int num_groups = 20;
  for (int u = 0; u < num_users; ++u) {
    engine.set_topk_mode(TopKMode::kExact);
    const auto exact = engine.RecommendForUser(u, 10, nullptr);
    engine.set_topk_mode(TopKMode::kIvf);
    user_recall += RecallAtK(exact, engine.RecommendForUser(u, 10, nullptr));
  }
  for (int g = 0; g < num_groups; ++g) {
    engine.set_topk_mode(TopKMode::kExact);
    const auto exact = engine.RecommendForGroup(g, 10, nullptr);
    engine.set_topk_mode(TopKMode::kIvf);
    group_recall +=
        RecallAtK(exact, engine.RecommendForGroup(g, 10, nullptr));
  }
  user_recall /= num_users;
  group_recall /= num_groups;
  // Deterministic world + seeds: these are fixed quantities, gated with
  // headroom below the measured values.
  EXPECT_GE(user_recall, 0.9) << "user recall@10 degraded";
  EXPECT_GE(group_recall, 0.9) << "group recall@10 degraded";

  // And the IVF scores it does return are exact-path bits (re-rank is
  // exact): every returned (item, score) appears identically in the exact
  // full ranking.
  engine.set_topk_mode(TopKMode::kExact);
  const auto exact_full =
      engine.RecommendForUser(0, f.model->num_items(), nullptr);
  engine.set_topk_mode(TopKMode::kIvf);
  for (const auto& [item, score] : engine.RecommendForUser(0, 10, nullptr)) {
    bool found = false;
    for (const auto& [eitem, escore] : exact_full) {
      if (eitem != item) continue;
      found = std::memcmp(&score, &escore, sizeof(double)) == 0;
      break;
    }
    EXPECT_TRUE(found) << "item " << item
                       << " score is not the exact-path bits";
  }
}

}  // namespace
}  // namespace groupsa::core
