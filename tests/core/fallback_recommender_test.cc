#include "core/fallback_recommender.h"

#include <gtest/gtest.h>

#include "core/fast_recommender.h"
#include "core/inference_engine.h"
#include "core/test_fixtures.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

GroupSaConfig SmallConfig() {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  return c;
}

data::EdgeList PopularityEdges() {
  // Item 2 three times, item 0 twice, item 1 once; items 3/4 unseen.
  // Out-of-range rows/items must be ignored, not trusted.
  return {{0, 2}, {1, 2}, {2, 2}, {0, 0}, {1, 0}, {2, 1}, {0, 99}, {0, -3}};
}

TEST(FallbackRecommenderTest, PopularityRankingIsCountDescIdAsc) {
  FallbackRecommender fallback(nullptr, PopularityEdges(), /*num_items=*/5);
  const auto ranked =
      fallback.PopularityTopK(5, [](data::ItemId) { return false; });
  ASSERT_EQ(ranked.size(), 5u);
  EXPECT_EQ(ranked[0].first, 2);  // count 3
  EXPECT_EQ(ranked[1].first, 0);  // count 2
  EXPECT_EQ(ranked[2].first, 1);  // count 1
  EXPECT_EQ(ranked[3].first, 3);  // count 0, id ascending
  EXPECT_EQ(ranked[4].first, 4);
  EXPECT_DOUBLE_EQ(ranked[0].second, 3.0);
}

TEST(FallbackRecommenderTest, NullEngineDegradesEveryRequest) {
  FallbackRecommender fallback(nullptr, PopularityEdges(), 5);
  const auto response = fallback.RecommendForUser(0, 3, nullptr);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.error, "model unavailable");
  ASSERT_EQ(response.items.size(), 3u);
  EXPECT_EQ(response.items[0].first, 2);
  EXPECT_EQ(fallback.requests(), 1);
  EXPECT_EQ(fallback.degraded_responses(), 1);
}

TEST(FallbackRecommenderTest, HealthyEngineServesModelScores) {
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  InferenceEngine engine(model.get());
  FallbackRecommender fallback(&engine, f.ui.train,
                               f.world.dataset.num_items);

  const auto response = fallback.RecommendForGroup(3, 5, nullptr);
  EXPECT_FALSE(response.degraded);
  EXPECT_TRUE(response.error.empty());
  ASSERT_EQ(response.items.size(), 5u);
  // The model path answered: identical to the engine's own ranking.
  const auto direct = engine.RecommendForGroup(3, 5, nullptr);
  EXPECT_EQ(response.items, direct);
  EXPECT_EQ(fallback.requests(), 1);
  EXPECT_EQ(fallback.degraded_responses(), 0);
}

TEST(FallbackRecommenderTest, InvalidIdsDegradeInsteadOfCrashing) {
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  InferenceEngine engine(model.get());
  FallbackRecommender fallback(&engine, f.ui.train,
                               f.world.dataset.num_items);

  const auto bad_user = fallback.RecommendForUser(-1, 3, nullptr);
  EXPECT_TRUE(bad_user.degraded);
  EXPECT_NE(bad_user.error.find("out of range"), std::string::npos);
  EXPECT_EQ(bad_user.items.size(), 3u);

  const auto bad_group = fallback.RecommendForGroup(10'000, 3, nullptr);
  EXPECT_TRUE(bad_group.degraded);

  const auto bad_members = fallback.RecommendForMembers({0, 5'000}, 3,
                                                        nullptr);
  EXPECT_TRUE(bad_members.degraded);

  const auto no_members = fallback.RecommendForMembers({}, 3, nullptr);
  EXPECT_TRUE(no_members.degraded);
  EXPECT_NE(no_members.error.find("empty member list"), std::string::npos);

  EXPECT_EQ(fallback.requests(), 4);
  EXPECT_EQ(fallback.degraded_responses(), 4);
}

TEST(FallbackRecommenderTest, ExcludeAppliedOnDegradedPathWithBadRows) {
  const TinyFixture f = TinyFixture::Make(SmallConfig());
  FallbackRecommender fallback(nullptr, PopularityEdges(), 5);
  // The exclude matrix is consulted with the very user id that broke the
  // model path; out-of-range rows must be skipped, in-range rows applied.
  data::InteractionMatrix exclude(/*num_rows=*/3, /*num_items=*/5,
                                  {{1, 2}});  // user 1 has seen item 2
  const auto response = fallback.RecommendForMembers({1, 400'000}, 2,
                                                     &exclude);
  EXPECT_TRUE(response.degraded);
  ASSERT_EQ(response.items.size(), 2u);
  EXPECT_EQ(response.items[0].first, 0);  // item 2 excluded via member 1
  EXPECT_EQ(response.items[1].first, 1);
}

TEST(FallbackRecommenderTest, NonPositiveKDegradesToEmptyRanking) {
  FallbackRecommender fallback(nullptr, PopularityEdges(), 5);
  const auto response = fallback.RecommendForUser(0, 0, nullptr);
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.items.empty());
}

TEST(FallbackRecommenderTest, KPastTheCatalogReturnsWholeCatalog) {
  FallbackRecommender fallback(nullptr, PopularityEdges(), 5);
  const auto response = fallback.RecommendForUser(0, 50, nullptr);
  EXPECT_TRUE(response.degraded);
  ASSERT_EQ(response.items.size(), 5u);  // all of it, never more
  EXPECT_EQ(response.items[0].first, 2);
}

TEST(FallbackRecommenderTest, ExcludeCoveringWholeCatalogYieldsEmpty) {
  FallbackRecommender fallback(nullptr, PopularityEdges(), 3);
  // User 0 has seen every item: nothing is left to recommend, and the
  // answer is an empty ranking, not an error or a crash.
  data::InteractionMatrix exclude(/*num_rows=*/1, /*num_items=*/3,
                                  {{0, 0}, {0, 1}, {0, 2}});
  const auto response = fallback.RecommendForUser(0, 3, &exclude);
  EXPECT_TRUE(response.degraded);
  EXPECT_TRUE(response.items.empty());
}

TEST(FallbackRecommenderTest, EmptyInteractionsStillRankIdAscending) {
  // A cold-start world with zero interactions: every count is 0, so the
  // popularity order collapses to the id-ascending tie-break.
  FallbackRecommender fallback(nullptr, data::EdgeList{}, /*num_items=*/4);
  const auto response = fallback.RecommendForUser(0, 3, nullptr);
  EXPECT_TRUE(response.degraded);
  ASSERT_EQ(response.items.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(response.items[static_cast<size_t>(i)].first, i);
    EXPECT_DOUBLE_EQ(response.items[static_cast<size_t>(i)].second, 0.0);
  }
}

TEST(FallbackRecommenderTest, ServeDegradedCountsAndExcludesLikeTheModel) {
  FallbackRecommender fallback(nullptr, PopularityEdges(), 5);
  data::InteractionMatrix exclude(/*num_rows=*/2, /*num_items=*/5,
                                  {{0, 2}});  // row 0 has seen item 2
  const auto response =
      fallback.ServeDegraded("queue full", 2, &exclude, {0, 900});
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.error, "queue full");
  ASSERT_EQ(response.items.size(), 2u);
  EXPECT_EQ(response.items[0].first, 0);  // item 2 excluded via row 0
  EXPECT_EQ(fallback.requests(), 1);
  EXPECT_EQ(fallback.degraded_responses(), 1);
}

// ---------------- Validated (Status) serving entry points ----------------

class ServingStatusTest : public ::testing::Test {
 protected:
  ServingStatusTest()
      : config_(SmallConfig()),
        f_(TinyFixture::Make(config_)),
        model_(f_.MakeModel(config_)),
        engine_(model_.get()) {}

  GroupSaConfig config_;
  TinyFixture f_;
  std::unique_ptr<GroupSaModel> model_;
  InferenceEngine engine_;
};

TEST_F(ServingStatusTest, ValidRequestsMatchUncheckedVariants) {
  const std::vector<data::ItemId> items = {0, 3, 7};
  std::vector<double> scores;
  ASSERT_TRUE(engine_.ScoreItemsForUser(4, items, &scores).ok());
  EXPECT_EQ(scores, engine_.ScoreItemsForUser(4, items));

  ASSERT_TRUE(engine_.ScoreItemsForGroup(2, items, &scores).ok());
  EXPECT_EQ(scores, engine_.ScoreItemsForGroup(2, items));

  ASSERT_TRUE(engine_.ScoreItemsForMembers({1, 2}, items, &scores).ok());
  EXPECT_EQ(scores, engine_.ScoreItemsForMembers({1, 2}, items));

  std::vector<std::vector<double>> member_scores;
  ASSERT_TRUE(engine_.MemberItemScores({1, 2}, items, &member_scores).ok());
  EXPECT_EQ(member_scores, engine_.MemberItemScores({1, 2}, items));

  std::vector<std::pair<data::ItemId, double>> ranked;
  ASSERT_TRUE(engine_.RecommendForUser(4, 5, nullptr, &ranked).ok());
  EXPECT_EQ(ranked, engine_.RecommendForUser(4, 5, nullptr));

  ASSERT_TRUE(engine_.RecommendForGroup(2, 5, nullptr, &ranked).ok());
  EXPECT_EQ(ranked, engine_.RecommendForGroup(2, 5, nullptr));

  ASSERT_TRUE(engine_.RecommendForMembers({1, 2}, 5, nullptr, &ranked).ok());
  EXPECT_EQ(ranked, engine_.RecommendForMembers({1, 2}, 5, nullptr));
}

TEST_F(ServingStatusTest, InvalidIdsReturnDescriptiveErrors) {
  std::vector<double> scores;
  Status s = engine_.ScoreItemsForUser(-1, {0}, &scores);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("user id -1 out of range"), std::string::npos);

  s = engine_.ScoreItemsForUser(model_->num_users(), {0}, &scores);
  EXPECT_FALSE(s.ok());

  s = engine_.ScoreItemsForUser(0, {model_->num_items()}, &scores);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("item id"), std::string::npos);

  s = engine_.ScoreItemsForGroup(-7, {0}, &scores);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("group id -7 out of range"), std::string::npos);

  s = engine_.ScoreItemsForMembers({}, {0}, &scores);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("empty member list"), std::string::npos);

  s = engine_.ScoreItemsForMembers({0, -2}, {0}, &scores);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("member"), std::string::npos);

  std::vector<std::pair<data::ItemId, double>> ranked;
  s = engine_.RecommendForUser(0, 0, nullptr, &ranked);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("k must be positive"), std::string::npos);
}

TEST_F(ServingStatusTest, FastRecommenderValidatesMembers) {
  FastGroupRecommender fast(model_.get());
  const std::vector<data::ItemId> items = {0, 1, 2};
  std::vector<double> scores;
  ASSERT_TRUE(fast.ScoreItemsForMembers({0, 1}, items, &scores).ok());
  EXPECT_EQ(scores, fast.ScoreItemsForMembers({0, 1}, items));

  Status s = fast.ScoreItemsForMembers({0, -1}, items, &scores);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out of range"), std::string::npos);

  std::vector<std::pair<data::ItemId, double>> ranked;
  ASSERT_TRUE(fast.RecommendForMembers({0, 1}, 4, nullptr, &ranked).ok());
  EXPECT_EQ(ranked, fast.RecommendForMembers({0, 1}, 4, nullptr));
  EXPECT_FALSE(fast.RecommendForMembers({}, 4, nullptr, &ranked).ok());
  EXPECT_FALSE(fast.RecommendForMembers({0}, -2, nullptr, &ranked).ok());
}

}  // namespace
}  // namespace groupsa::core
