// Edge cases of the symmetric per-row int8 quantizer: all-zero rows,
// constant rows, saturation at the +/- extremes, single-column rows, the
// scale/2 round-trip error bound and the memory contract behind the
// bytes-per-user gate.

#include "core/quantized.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/matrix.h"

namespace groupsa::core {
namespace {

tensor::Matrix RowMatrix(const std::vector<float>& values) {
  tensor::Matrix m(1, static_cast<int>(values.size()));
  for (size_t j = 0; j < values.size(); ++j)
    m.At(0, static_cast<int>(j)) = values[j];
  return m;
}

TEST(QuantizedTest, AllZeroRowRoundTripsExactly) {
  const QuantizedRows q = QuantizeRows(RowMatrix({0.0f, 0.0f, 0.0f, 0.0f}));
  EXPECT_EQ(q.scale(0), 0.0f);
  for (int j = 0; j < 4; ++j) EXPECT_EQ(q.RowPtr(0)[j], 0);
  const tensor::Matrix back = q.Dequantize();
  for (int j = 0; j < 4; ++j) EXPECT_EQ(back.At(0, j), 0.0f);
}

TEST(QuantizedTest, ConstantRowSaturatesEveryLane) {
  for (const float v : {0.75f, -3.0f, 1e-6f, 4096.0f}) {
    const QuantizedRows q = QuantizeRows(RowMatrix({v, v, v, v, v}));
    for (int j = 0; j < 5; ++j)
      EXPECT_EQ(q.RowPtr(0)[j], v > 0 ? 127 : -127) << "v=" << v;
    const tensor::Matrix back = q.Dequantize();
    for (int j = 0; j < 5; ++j)
      EXPECT_NEAR(back.At(0, j), v, std::abs(v) * 1e-5f) << "v=" << v;
  }
}

TEST(QuantizedTest, ExtremesClampTo127) {
  // maxabs sits on the negative element; +maxabs/-maxabs must land exactly
  // on +/-127 and nothing may escape the clamp.
  const QuantizedRows q = QuantizeRows(RowMatrix({-8.0f, 8.0f, 2.0f, -1.0f}));
  EXPECT_EQ(q.RowPtr(0)[0], -127);
  EXPECT_EQ(q.RowPtr(0)[1], 127);
  for (int j = 0; j < 4; ++j) {
    EXPECT_GE(q.RowPtr(0)[j], -127);
    EXPECT_LE(q.RowPtr(0)[j], 127);
  }
  // Interior elements land mid-range, not at the rails.
  EXPECT_EQ(q.RowPtr(0)[2], 32);   // 2/8 * 127 = 31.75 -> 32
  EXPECT_EQ(q.RowPtr(0)[3], -16);  // -1/8 * 127 = -15.875 -> -16
}

TEST(QuantizedTest, SingleColumnRows) {
  tensor::Matrix m(3, 1);
  m.At(0, 0) = 2.5f;
  m.At(1, 0) = -0.001f;
  m.At(2, 0) = 0.0f;
  const QuantizedRows q = QuantizeRows(m);
  EXPECT_EQ(q.RowPtr(0)[0], 127);
  EXPECT_EQ(q.RowPtr(1)[0], -127);
  EXPECT_EQ(q.RowPtr(2)[0], 0);
  EXPECT_EQ(q.scale(2), 0.0f);
  const tensor::Matrix back = q.Dequantize();
  EXPECT_NEAR(back.At(0, 0), 2.5f, 2.5f * 1e-5f);
  EXPECT_NEAR(back.At(1, 0), -0.001f, 0.001f * 1e-5f);
  EXPECT_EQ(back.At(2, 0), 0.0f);
}

TEST(QuantizedTest, RoundTripErrorBoundedByHalfScale) {
  tensor::Matrix m(16, 32);
  Rng rng(99);
  m.FillGaussian(&rng, 0.0f, 2.0f);
  const QuantizedRows q = QuantizeRows(m);
  tensor::Matrix back;
  q.DequantizeInto(&back);
  for (int r = 0; r < m.rows(); ++r) {
    const float bound = 0.5f * q.scale(r) * (1.0f + 1e-5f);
    for (int j = 0; j < m.cols(); ++j) {
      EXPECT_LE(std::abs(back.At(r, j) - m.At(r, j)), bound)
          << "row " << r << " col " << j;
    }
  }
}

TEST(QuantizedTest, QuantizeRowMatchesQuantizeRows) {
  tensor::Matrix m(4, 8);
  Rng rng(7);
  m.FillGaussian(&rng, 0.0f, 1.0f);
  const QuantizedRows q = QuantizeRows(m);
  for (int r = 0; r < m.rows(); ++r) {
    std::vector<int8_t> row(8);
    const float scale = QuantizeRow(m.RowPtr(r), 8, row.data());
    EXPECT_EQ(scale, q.scale(r));
    for (int j = 0; j < 8; ++j) EXPECT_EQ(row[static_cast<size_t>(j)], q.RowPtr(r)[j]);
  }
}

TEST(QuantizedTest, MemoryIsAtLeastThreeAndAHalfTimesSmallerThanFp32) {
  // d + 4 bytes per row vs 4d FP32: 3.55x at the model's d = 32.
  tensor::Matrix m(100, 32);
  Rng rng(3);
  m.FillGaussian(&rng, 0.0f, 1.0f);
  const QuantizedRows q = QuantizeRows(m);
  EXPECT_EQ(q.MemoryBytes(), 100u * (32u + 4u));
  const double fp32 = 100.0 * 32.0 * sizeof(float);
  EXPECT_GE(fp32 / static_cast<double>(q.MemoryBytes()), 3.5);
}

}  // namespace
}  // namespace groupsa::core
