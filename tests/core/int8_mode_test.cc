// ScoreMode::kInt8 end-to-end suite: ranking quality of the int8 scan +
// exact FP32 re-rank against the exact path (HR@10 / NDCG@10 within 1%),
// the >= 3.5x representation-cache memory gate, value-version invalidation
// of the quantized tables after real optimizer steps, composition with
// TopKMode::kIvf, determinism across thread counts, and the
// FastGroupRecommender int8 scan.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/fast_recommender.h"
#include "core/inference_engine.h"
#include "core/item_index.h"
#include "core/test_fixtures.h"
#include "core/topk.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

GroupSaConfig SmallConfig() {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  return c;
}

// The engine-test ablation corners: full model, Group-A (no user modeling),
// Group-I (latent table falls back to the item embedding) and the untied
// variant — each takes a different tower path through the int8 linearized
// scan.
std::vector<GroupSaConfig> AblationConfigs() {
  std::vector<GroupSaConfig> configs;
  configs.push_back(SmallConfig());
  {
    GroupSaConfig c = GroupSaConfig::GroupA();
    c.embedding_dim = 8;
    c.attention_hidden = 8;
    c.ffn_hidden = 8;
    c.predictor_hidden = {8};
    c.fusion_hidden = {8};
    configs.push_back(c);
  }
  {
    GroupSaConfig c = GroupSaConfig::GroupI();
    c.embedding_dim = 8;
    c.attention_hidden = 8;
    c.ffn_hidden = 8;
    c.predictor_hidden = {8};
    c.fusion_hidden = {8};
    configs.push_back(c);
  }
  {
    GroupSaConfig c = SmallConfig();
    c.share_predictors = false;
    c.separate_latent_tower = false;
    c.tie_latent_spaces = false;
    c.use_enhanced_member_reps = true;
    configs.push_back(c);
  }
  return configs;
}

void AtThreads(const std::function<void()>& body) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    parallel::SetGlobalThreads(threads);
    body();
  }
  parallel::SetGlobalThreads(1);
}

bool SameList(const std::vector<std::pair<data::ItemId, double>>& a,
              const std::vector<std::pair<data::ItemId, double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first) return false;
    if (std::memcmp(&a[i].second, &b[i].second, sizeof(double)) != 0)
      return false;
  }
  return true;
}

// A medium seeded world (600 items) so the int8 scan has room to miss.
struct World {
  data::SyntheticWorld world;
  data::Split ui;
  data::Split gi;
  data::InteractionMatrix ui_train;
  data::InteractionMatrix gi_train;
  ModelData model_data;
  std::unique_ptr<GroupSaModel> model;

  explicit World(const GroupSaConfig& config) {
    data::SyntheticWorldConfig wc = data::SyntheticWorldConfig::Tiny();
    wc.name = "int8";
    wc.num_users = 150;
    wc.num_items = 600;
    wc.num_groups = 60;
    world = data::GenerateWorld(wc);
    Rng rng(5);
    ui = data::SplitEdges(world.dataset.user_item, 0.2, 0.0, &rng);
    gi = data::GlobalSplitEdges(world.dataset.group_item, 0.2, 0.0, &rng);
    ui_train = data::InteractionMatrix(world.dataset.num_users,
                                       world.dataset.num_items, ui.train);
    gi_train = data::InteractionMatrix(world.dataset.groups.num_groups(),
                                       world.dataset.num_items, gi.train);
    model_data.groups = &world.dataset.groups;
    model_data.social = &world.dataset.social;
    model_data.top_items = data::TopItemsPerUser(ui_train, config.top_h);
    model_data.top_friends =
        data::TopFriendsPerUser(world.dataset.social, config.top_h);
    Rng model_rng(11);
    model = std::make_unique<GroupSaModel>(config, world.dataset.num_users,
                                           world.dataset.num_items,
                                           model_data, &model_rng);
  }
};

// Leave-one-out HR@10 / NDCG@10 over the held-out user-item test edges: the
// positive's rank inside the top-10 recommendation list with train items
// excluded. The same protocol runs under both score modes, so the metric
// deltas isolate the int8 approximation.
struct Metrics {
  double hr = 0.0;
  double ndcg = 0.0;
  int cases = 0;
};

Metrics RankingMetrics(InferenceEngine& engine, const World& w) {
  Metrics m;
  for (const auto& edge : w.ui.test) {
    const auto top = engine.RecommendForUser(edge.row, 10, &w.ui_train);
    for (size_t rank = 0; rank < top.size(); ++rank) {
      if (top[rank].first != edge.item) continue;
      m.hr += 1.0;
      m.ndcg += 1.0 / std::log2(static_cast<double>(rank) + 2.0);
      break;
    }
    ++m.cases;
  }
  if (m.cases > 0) {
    m.hr /= m.cases;
    m.ndcg /= m.cases;
  }
  return m;
}

TEST(Int8ModeTest, RankingQualityWithinOnePercentOfExact) {
  const GroupSaConfig config = SmallConfig();
  World w(config);
  InferenceEngine& engine = w.model->inference();

  engine.set_score_mode(ScoreMode::kExact);
  const Metrics exact = RankingMetrics(engine, w);
  engine.set_score_mode(ScoreMode::kInt8);
  const Metrics int8 = RankingMetrics(engine, w);

  ASSERT_GE(exact.cases, 200) << "world too small for a stable gate";
  // 1% relative with an absolute floor so a tiny exact metric cannot make
  // the gate vacuous or impossibly strict.
  const double hr_eps = std::max(0.01 * exact.hr, 0.002);
  const double ndcg_eps = std::max(0.01 * exact.ndcg, 0.002);
  EXPECT_NEAR(int8.hr, exact.hr, hr_eps);
  EXPECT_NEAR(int8.ndcg, exact.ndcg, ndcg_eps);
}

TEST(Int8ModeTest, DeterministicAcrossThreadCountsAndRepeats) {
  for (const GroupSaConfig& config : AblationConfigs()) {
    SCOPED_TRACE(config.variant);
    const TinyFixture f = TinyFixture::Make(config);
    auto model = f.MakeModel(config);
    InferenceEngine& engine = model->inference();
    engine.set_score_mode(ScoreMode::kInt8);
    const auto user_ref = engine.RecommendForUser(1, 10, nullptr);
    const auto group_ref = engine.RecommendForGroup(2, 10, nullptr);
    const auto members_ref =
        engine.RecommendForMembers({0, 3, 5}, 10, nullptr);
    ASSERT_EQ(user_ref.size(), 10u);
    ASSERT_EQ(group_ref.size(), 10u);
    ASSERT_EQ(members_ref.size(), 10u);
    AtThreads([&] {
      EXPECT_TRUE(SameList(user_ref, engine.RecommendForUser(1, 10, nullptr)));
      EXPECT_TRUE(
          SameList(group_ref, engine.RecommendForGroup(2, 10, nullptr)));
      EXPECT_TRUE(SameList(members_ref,
                           engine.RecommendForMembers({0, 3, 5}, 10, nullptr)));
    });
  }
}

TEST(Int8ModeTest, RerankKCoveringTheCatalogReproducesExactTopTen) {
  // With rerank_k >= catalog size every candidate goes through the exact
  // re-rank, so int8 mode degenerates to the exact ranking over the
  // dequantized cached rep — the top-10 item sets must coincide with the
  // exact path's for almost every user (the reps differ only by bounded
  // quantization error).
  const GroupSaConfig config = SmallConfig();
  World w(config);
  InferenceEngine& engine = w.model->inference();
  Int8Config int8;
  int8.rerank_k = w.model->num_items();
  engine.set_int8_config(int8);

  int agree = 0;
  const int users = 30;
  for (data::UserId u = 0; u < users; ++u) {
    engine.set_score_mode(ScoreMode::kExact);
    const auto exact = engine.RecommendForUser(u, 10, nullptr);
    engine.set_score_mode(ScoreMode::kInt8);
    const auto quant = engine.RecommendForUser(u, 10, nullptr);
    std::set<data::ItemId> want;
    for (const auto& [item, score] : exact) want.insert(item);
    int hit = 0;
    for (const auto& [item, score] : quant) hit += want.count(item) ? 1 : 0;
    agree += hit;
  }
  EXPECT_GE(static_cast<double>(agree) / (10.0 * users), 0.95);
}

TEST(Int8ModeTest, MemoryAtLeastThreeAndAHalfTimesSmallerThanFp32) {
  // The ratio is (4d) / (d + 4) per cached row, so the 3.5x gate is a
  // statement about the model's real embedding width (d = 32 -> 3.55x); the
  // other tests shrink d for speed, this one must not.
  GroupSaConfig config = SmallConfig();
  config.embedding_dim = 32;
  World w(config);
  InferenceEngine& engine = w.model->inference();
  engine.set_score_mode(ScoreMode::kInt8);
  for (data::UserId u = 0; u < 100; ++u)
    engine.RecommendForUser(u, 10, nullptr);
  ASSERT_EQ(engine.cached_quant_users(), 100u);
  // int8 mode must not warm the FP32 rep cache — that is the memory win.
  EXPECT_EQ(engine.cached_users(), 0u);
  const double quant = static_cast<double>(engine.QuantUserCacheBytes());
  const double fp32 = static_cast<double>(engine.Fp32UserCacheBytes());
  ASSERT_GT(quant, 0.0);
  EXPECT_GE(fp32 / quant, 3.5);
}

TEST(Int8ModeTest, TrainerEpochInvalidatesQuantizedState) {
  const GroupSaConfig config = SmallConfig();
  TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  InferenceEngine& engine = model->inference();
  engine.set_score_mode(ScoreMode::kInt8);

  const auto state_before = engine.GetQuantState();
  const auto rec_before = engine.RecommendForUser(0, 10, nullptr);
  EXPECT_GT(engine.cached_quant_users(), 0u);
  // Stable parameters: the state pointer is reused.
  EXPECT_EQ(engine.GetQuantState().get(), state_before.get());

  // Real gradients, real Adam steps.
  Rng rng(7);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  trainer.RunGroupEpoch();

  // The version bump must drop the quantized tables AND the quantized rep
  // caches, and the rebuilt state must rank with the new parameters.
  const auto state_after = engine.GetQuantState();
  EXPECT_NE(state_after.get(), state_before.get());
  EXPECT_EQ(engine.cached_quant_users(), 0u);
  const auto rec_after = engine.RecommendForUser(0, 10, nullptr);
  EXPECT_FALSE(SameList(rec_after, rec_before));
}

TEST(Int8ModeTest, ComposesWithIvfFullProbeIdentically) {
  // nprobe = nlist makes the IVF candidate union the whole catalog, so
  // int8+IVF must return exactly what plain int8 returns (the subset-scan
  // total order is candidate-order independent).
  const GroupSaConfig config = SmallConfig();
  World w(config);
  InferenceEngine& engine = w.model->inference();
  engine.set_score_mode(ScoreMode::kInt8);

  const auto user_plain = engine.RecommendForUser(3, 10, nullptr);
  const auto group_plain = engine.RecommendForGroup(4, 10, nullptr);

  ItemIndexConfig index_config;
  index_config.nlist = 16;
  index_config.nprobe = 16;
  engine.set_index_config(index_config);
  engine.set_topk_mode(TopKMode::kIvf);
  EXPECT_TRUE(SameList(user_plain, engine.RecommendForUser(3, 10, nullptr)));
  EXPECT_TRUE(SameList(group_plain, engine.RecommendForGroup(4, 10, nullptr)));

  // A genuinely approximate probe still returns most of the int8 top-10.
  index_config.nprobe = 4;
  engine.set_index_config(index_config);
  std::set<data::ItemId> want;
  for (const auto& [item, score] : user_plain) want.insert(item);
  int hit = 0;
  for (const auto& [item, score] : engine.RecommendForUser(3, 10, nullptr))
    hit += want.count(item) ? 1 : 0;
  EXPECT_GE(hit, 7);
}

TEST(Int8ModeTest, FastRecommenderInt8MatchesExactScanClosely) {
  const GroupSaConfig config = SmallConfig();
  World w(config);
  FastGroupRecommender fast(w.model.get());
  const std::vector<data::UserId> members{1, 4, 9};

  const auto exact = fast.RecommendForMembers(members, 10, nullptr);
  fast.set_score_mode(ScoreMode::kInt8);
  const auto quant = fast.RecommendForMembers(members, 10, nullptr);
  ASSERT_EQ(quant.size(), 10u);
  std::set<data::ItemId> want;
  for (const auto& [item, score] : exact) want.insert(item);
  int hit = 0;
  for (const auto& [item, score] : quant) hit += want.count(item) ? 1 : 0;
  EXPECT_GE(hit, 8);

  // int8 + IVF full probe == int8 over the catalog, bit for bit.
  InferenceEngine& engine = w.model->inference();
  ItemIndexConfig index_config;
  index_config.nlist = 12;
  index_config.nprobe = 12;
  engine.set_index_config(index_config);
  fast.set_topk_mode(TopKMode::kIvf);
  EXPECT_TRUE(SameList(quant, fast.RecommendForMembers(members, 10, nullptr)));
}

}  // namespace
}  // namespace groupsa::core
