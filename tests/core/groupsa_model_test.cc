#include "core/groupsa_model.h"

#include <gtest/gtest.h>

#include "core/test_fixtures.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

GroupSaConfig FastConfig() {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  return c;
}

TEST(GroupSaModelTest, ConstructsAllVariants) {
  for (auto config :
       {GroupSaConfig::Default(), GroupSaConfig::GroupA(),
        GroupSaConfig::GroupS(), GroupSaConfig::GroupI(),
        GroupSaConfig::GroupF(), GroupSaConfig::GroupG(),
        GroupSaConfig::NoSocialMask()}) {
    config.embedding_dim = 8;
    config.attention_hidden = 8;
    config.ffn_hidden = 8;
    config.predictor_hidden = {8};
    config.fusion_hidden = {8};
    const TinyFixture f = TinyFixture::Make(config);
    auto model = f.MakeModel(config);
    EXPECT_GT(model->NumParameterScalars(), 0) << config.variant;
  }
}

TEST(GroupSaModelTest, UserScoresDeterministicAtInference) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const std::vector<data::ItemId> items = {0, 1, 2, 3};
  const auto a = model->ScoreItemsForUser(3, items);
  const auto b = model->ScoreItemsForUser(3, items);
  EXPECT_EQ(a, b);
}

TEST(GroupSaModelTest, GroupScoresVaryAcrossItems) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const std::vector<data::ItemId> items = {0, 1, 2, 3, 4};
  const auto scores = model->ScoreItemsForGroup(0, items);
  bool any_diff = false;
  for (size_t i = 1; i < scores.size(); ++i)
    any_diff = any_diff || scores[i] != scores[0];
  EXPECT_TRUE(any_diff);
}

TEST(GroupSaModelTest, AdHocMemberListMatchesGroupTablePath) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const auto& members = f.world.dataset.groups.Members(2);
  const std::vector<data::ItemId> items = {1, 5, 9};
  const auto via_group = model->ScoreItemsForGroup(2, items);
  const auto via_members = model->ScoreItemsForMembers(members, items);
  ASSERT_EQ(via_group.size(), via_members.size());
  for (size_t i = 0; i < via_group.size(); ++i)
    EXPECT_NEAR(via_group[i], via_members[i], 1e-6);
}

TEST(GroupSaModelTest, MemberWeightsFormDistribution) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const auto detail = model->ScoreGroupItemDetailed(0, 3);
  const int l = f.world.dataset.groups.GroupSize(0);
  ASSERT_EQ(detail.member_weights.cols(), l);
  double total = 0.0;
  for (int c = 0; c < l; ++c) {
    EXPECT_GE(detail.member_weights.At(0, c), 0.0f);
    total += detail.member_weights.At(0, c);
  }
  EXPECT_NEAR(total, 1.0, 1e-5);
}

TEST(GroupSaModelTest, MemberItemScoresShape) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const auto scores = model->MemberItemScores({1, 2, 3}, {0, 1});
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].size(), 2u);
}

TEST(GroupSaModelTest, RecommendForGroupExcludesObserved) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const data::InteractionMatrix all = f.world.dataset.GroupItemMatrix();
  // Find a group with at least one interaction.
  data::GroupId group = -1;
  for (data::GroupId g = 0; g < all.num_rows(); ++g) {
    if (all.RowDegree(g) > 0) {
      group = g;
      break;
    }
  }
  ASSERT_GE(group, 0);
  const auto top = model->RecommendForGroup(group, 20, &all);
  EXPECT_EQ(top.size(), 20u);
  for (const auto& [item, score] : top) EXPECT_FALSE(all.Has(group, item));
  // Sorted descending.
  for (size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].second, top[i].second);
}

TEST(GroupSaModelTest, RecommendForUserTopKOrdering) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const auto top = model->RecommendForUser(0, 5, nullptr);
  EXPECT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].second, top[i].second);
}

TEST(GroupSaModelTest, TrainingGraphProducesParameterGradients) {
  GroupSaConfig config = FastConfig();
  config.dropout_ratio = 0.0f;
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(3);
  ag::Tape tape;
  auto fwd = model->BuildGroupForward(&tape, 0, /*training=*/true, &rng);
  auto pos = model->ScoreGroupItem(&tape, fwd, 1, true, &rng);
  auto neg = model->ScoreGroupItem(&tape, fwd, 2, true, &rng);
  ag::TensorPtr loss = ag::BprLoss(&tape, pos.score, neg.score);
  tape.Backward(loss);
  // The shared user embedding rows of the group members must have received
  // gradient.
  float grad_mass = 0.0f;
  for (data::UserId member : f.world.dataset.groups.Members(0)) {
    for (int c = 0; c < config.embedding_dim; ++c)
      grad_mass +=
          std::abs(model->user_embedding().table()->grad().At(member, c));
  }
  EXPECT_GT(grad_mass, 0.0f);
}

TEST(GroupSaModelTest, GroupGVariantSkipsLatentChannel) {
  GroupSaConfig config = FastConfig();
  config.use_item_aggregation = false;
  config.use_social_aggregation = false;
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  ag::Tape tape;
  Rng rng(4);
  auto fwd = model->BuildUserForward(&tape, 0, true, &rng);
  EXPECT_EQ(fwd.latent, nullptr);
}

}  // namespace
}  // namespace groupsa::core
