#include <cmath>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/test_fixtures.h"
#include "core/trainer.h"
#include "nn/checkpoint.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  if (f != nullptr) std::fclose(f);
  return bytes;
}

// Group-only schedule over the tiny world: a handful of multi-batch epochs,
// fast enough to train to completion several times per test.
GroupSaConfig GroupOnlyConfig(int epochs = 3) {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  c.use_user_task = false;
  c.user_epochs = 0;
  c.group_epochs = epochs;
  c.batch_size = 16;  // several batches per epoch -> mid-epoch cursors exist
  return c;
}

// A full two-stage schedule (social + user + interleaved + group units) so
// resume is exercised across every ScheduleUnit kind.
GroupSaConfig FullScheduleConfig() {
  GroupSaConfig c = GroupOnlyConfig();
  c.use_user_task = true;
  c.user_epochs = 1;
  c.group_epochs = 1;
  c.batch_size = 64;
  return c;
}

// Everything needed for one training run, built deterministically from the
// config alone — two Runs over the same config are bit-identical worlds.
struct TrainRun {
  TinyFixture f;
  std::unique_ptr<GroupSaModel> model;
  Rng rng{7};
  std::unique_ptr<Trainer> trainer;

  explicit TrainRun(const GroupSaConfig& config)
      : f(TinyFixture::Make(config)), model(f.MakeModel(config)) {
    trainer = std::make_unique<Trainer>(model.get(), f.ui.train, f.gi.train,
                                        &f.ui_train, &f.gi_train, &rng);
  }

  std::string Params() const {
    return nn::EncodeParameters(model->Parameters());
  }
};

// Trains `config` to completion with snapshotting; returns the final
// parameter encoding and leaves the last snapshot at `snapshot_path`.
std::string TrainUninterrupted(const GroupSaConfig& config,
                               const std::string& snapshot_path) {
  TrainRun run(config);
  Trainer::FitOptions options;
  options.snapshot_path = snapshot_path;
  options.snapshot_every = 1;
  Trainer::FitReport report;
  EXPECT_TRUE(run.trainer->Fit(options, &report).ok());
  EXPECT_FALSE(report.resumed);
  return run.Params();
}

// Kills a fresh run at trainer-batch hit `kill_at` (real SIGKILL in a death-
// test child), resumes from the surviving snapshot in this process and
// trains to completion. Returns the resumed run's final parameter encoding.
std::string KillAndResume(const GroupSaConfig& config,
                          const std::string& snapshot_path, int kill_at) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        failpoint::Arm("trainer.batch=kill@" + std::to_string(kill_at));
        TrainRun run(config);
        Trainer::FitOptions options;
        options.snapshot_path = snapshot_path;
        options.snapshot_every = 1;
        Trainer::FitReport report;
        run.trainer->Fit(options, &report).ok();
        std::exit(0);  // not reached: the failpoint SIGKILLs mid-schedule
      },
      ::testing::KilledBySignal(SIGKILL), "");

  TrainRun resumed(config);
  EXPECT_TRUE(resumed.trainer->ResumeFrom(snapshot_path).ok());
  Trainer::FitOptions options;
  options.snapshot_path = snapshot_path;
  options.snapshot_every = 1;
  Trainer::FitReport report;
  EXPECT_TRUE(resumed.trainer->Fit(options, &report).ok());
  EXPECT_TRUE(report.resumed);
  return resumed.Params();
}

class TrainerResumeTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(TrainerResumeTest, KillMidEpochResumesByteIdentical) {
  const GroupSaConfig config = GroupOnlyConfig();
  const std::string path_a = TempPath("resume_mid_a.snap");
  const std::string path_b = TempPath("resume_mid_b.snap");
  const std::string uninterrupted = TrainUninterrupted(config, path_a);
  // Hit 2 is the second batch of the first epoch: the only snapshot on disk
  // is a mid-epoch cursor (next_batch > 0).
  const std::string resumed = KillAndResume(config, path_b, 2);
  EXPECT_EQ(uninterrupted, resumed);
  // The final snapshot files agree byte for byte: parameters, Adam moments,
  // schedule cursor and RNG stream all converged to the same state.
  EXPECT_EQ(ReadFile(path_a), ReadFile(path_b));
}

TEST_F(TrainerResumeTest, KillAcrossEpochBoundaryResumesByteIdentical) {
  const GroupSaConfig config = GroupOnlyConfig();
  const std::string path_a = TempPath("resume_unit_a.snap");
  const std::string path_b = TempPath("resume_unit_b.snap");
  const std::string uninterrupted = TrainUninterrupted(config, path_a);
  // A later hit lands past the first end-of-unit snapshot, exercising the
  // whole-unit replay path as well.
  const std::string resumed = KillAndResume(config, path_b, 6);
  EXPECT_EQ(uninterrupted, resumed);
  EXPECT_EQ(ReadFile(path_a), ReadFile(path_b));
}

TEST_F(TrainerResumeTest, ResumeAtDifferentThreadCountIsByteIdentical) {
  GroupSaConfig serial = GroupOnlyConfig();
  serial.threads = 1;
  const std::string path_a = TempPath("resume_threads_a.snap");
  const std::string uninterrupted = TrainUninterrupted(serial, path_a);

  GroupSaConfig pooled = GroupOnlyConfig();
  pooled.threads = 4;
  const std::string path_b = TempPath("resume_threads_b.snap");
  const std::string resumed = KillAndResume(pooled, path_b, 3);
  EXPECT_EQ(uninterrupted, resumed);
  EXPECT_EQ(ReadFile(path_a), ReadFile(path_b));
}

TEST_F(TrainerResumeTest, KillInFullTwoStageScheduleResumesByteIdentical) {
  const GroupSaConfig config = FullScheduleConfig();
  const std::string path_a = TempPath("resume_full_a.snap");
  const std::string path_b = TempPath("resume_full_b.snap");
  const std::string uninterrupted = TrainUninterrupted(config, path_a);
  // Hit 8 lands inside the stage-1 user epoch (after the social unit), so
  // the resumed schedule still has social, user and group work left.
  const std::string resumed = KillAndResume(config, path_b, 8);
  EXPECT_EQ(uninterrupted, resumed);
  EXPECT_EQ(ReadFile(path_a), ReadFile(path_b));
}

TEST_F(TrainerResumeTest, DivergentBatchIsSkippedAndRunCompletes) {
  TrainRun run(GroupOnlyConfig(2));
  failpoint::Arm("trainer.batch=corrupt@2");  // poison one batch loss
  Trainer::FitOptions options;
  Trainer::FitReport report;
  ASSERT_TRUE(run.trainer->Fit(options, &report).ok());
  EXPECT_EQ(report.skipped_batches, 1);
  EXPECT_EQ(report.rollbacks, 0);
  EXPECT_EQ(report.group_epochs.size(), 2u);
}

TEST_F(TrainerResumeTest, GuardDisabledLetsNonFiniteLossThrough) {
  TrainRun run(GroupOnlyConfig(1));
  failpoint::Arm("trainer.batch=corrupt@1");
  Trainer::FitOptions options;
  options.divergence_guard = false;
  Trainer::FitReport report;
  ASSERT_TRUE(run.trainer->Fit(options, &report).ok());
  EXPECT_EQ(report.skipped_batches, 0);
  EXPECT_TRUE(std::isnan(report.group_epochs[0].avg_loss));
}

TEST_F(TrainerResumeTest, PersistentDivergenceWithoutSnapshotFails) {
  TrainRun run(GroupOnlyConfig(2));
  failpoint::Arm("trainer.batch=corrupt");  // every batch goes bad
  Trainer::FitOptions options;
  options.max_consecutive_bad = 1;
  Trainer::FitReport report;
  const Status s = run.trainer->Fit(options, &report);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("no snapshot"), std::string::npos);
}

TEST_F(TrainerResumeTest, RollbackRecoversAndMatchesCleanRun) {
  const GroupSaConfig config = GroupOnlyConfig();
  const std::string clean_path = TempPath("rollback_clean.snap");
  const std::string uninterrupted = TrainUninterrupted(config, clean_path);

  TrainRun run(config);
  // One transient poisoned batch; zero tolerance forces an immediate
  // rollback to the latest per-batch snapshot. The replay of the same batch
  // is clean (the failpoint is one-shot), so training completes and — since
  // rollback rewinds parameters, moments and the RNG stream together — the
  // result is bit-identical to a run that never saw the fault.
  failpoint::Arm("trainer.batch=corrupt@3");
  Trainer::FitOptions options;
  options.snapshot_path = TempPath("rollback_run.snap");
  options.snapshot_every = 1;
  options.max_consecutive_bad = 0;
  Trainer::FitReport report;
  ASSERT_TRUE(run.trainer->Fit(options, &report).ok());
  EXPECT_EQ(report.rollbacks, 1);
  EXPECT_EQ(report.skipped_batches, 0);  // counted per recorded epoch stats
  EXPECT_EQ(run.Params(), uninterrupted);
}

TEST_F(TrainerResumeTest, PersistentDivergenceExhaustsRollbacksAndFails) {
  TrainRun run(GroupOnlyConfig());
  failpoint::Arm("trainer.batch=corrupt@3+");  // re-poisons every replay
  Trainer::FitOptions options;
  options.snapshot_path = TempPath("rollback_exhaust.snap");
  options.snapshot_every = 1;
  options.max_consecutive_bad = 0;
  options.max_rollbacks = 2;
  Trainer::FitReport report;
  const Status s = run.trainer->Fit(options, &report);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("still non-finite"), std::string::npos);
}

TEST_F(TrainerResumeTest, ResumeRejectsFingerprintMismatch) {
  const GroupSaConfig config = GroupOnlyConfig(1);
  const std::string path = TempPath("resume_fingerprint.snap");
  TrainUninterrupted(config, path);

  GroupSaConfig other = config;
  other.learning_rate *= 2.0;  // same shapes, different training dynamics
  TrainRun run(other);
  const Status s = run.trainer->ResumeFrom(path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("fingerprint mismatch"), std::string::npos);
}

TEST_F(TrainerResumeTest, ResumeRejectsPlainParameterCheckpoint) {
  const GroupSaConfig config = GroupOnlyConfig(1);
  TrainRun run(config);
  const std::string path = TempPath("resume_plain_params.bin");
  ASSERT_TRUE(nn::SaveParameters(run.model->Parameters(), path).ok());
  const Status s = run.trainer->ResumeFrom(path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not a training snapshot"), std::string::npos);
}

TEST_F(TrainerResumeTest, ResumeRejectsMissingFile) {
  TrainRun run(GroupOnlyConfig(1));
  EXPECT_FALSE(
      run.trainer->ResumeFrom(TempPath("no_such_snapshot.snap")).ok());
}

TEST_F(TrainerResumeTest, FingerprintIgnoresThreadsOnly) {
  const GroupSaConfig base = GroupOnlyConfig();
  TrainRun a(base);

  GroupSaConfig threaded = base;
  threaded.threads = 4;
  TrainRun b(threaded);
  EXPECT_EQ(a.trainer->ConfigFingerprint(), b.trainer->ConfigFingerprint());

  GroupSaConfig deeper = base;
  deeper.num_voting_layers += 1;
  TrainRun c(deeper);
  EXPECT_NE(a.trainer->ConfigFingerprint(), c.trainer->ConfigFingerprint());
}

}  // namespace
}  // namespace groupsa::core
