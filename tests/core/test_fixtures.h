#ifndef GROUPSA_TESTS_CORE_TEST_FIXTURES_H_
#define GROUPSA_TESTS_CORE_TEST_FIXTURES_H_

#include <memory>

#include "core/groupsa_model.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tfidf.h"

namespace groupsa::core::testing {

// A tiny world plus everything needed to construct models and trainers.
struct TinyFixture {
  data::SyntheticWorld world;
  data::Split ui;
  data::Split gi;
  data::InteractionMatrix ui_train;
  data::InteractionMatrix gi_train;
  ModelData model_data;

  static TinyFixture Make(const GroupSaConfig& config, uint64_t seed = 5) {
    TinyFixture f;
    f.world = data::GenerateWorld(data::SyntheticWorldConfig::Tiny());
    Rng rng(seed);
    f.ui = data::SplitEdges(f.world.dataset.user_item, 0.2, 0.0, &rng);
    f.gi = data::GlobalSplitEdges(f.world.dataset.group_item, 0.2, 0.0, &rng);
    f.ui_train = data::InteractionMatrix(f.world.dataset.num_users,
                                         f.world.dataset.num_items,
                                         f.ui.train);
    f.gi_train = data::InteractionMatrix(f.world.dataset.groups.num_groups(),
                                         f.world.dataset.num_items,
                                         f.gi.train);
    f.model_data.groups = &f.world.dataset.groups;
    f.model_data.social = &f.world.dataset.social;
    f.model_data.top_items = data::TopItemsPerUser(f.ui_train, config.top_h);
    f.model_data.top_friends =
        data::TopFriendsPerUser(f.world.dataset.social, config.top_h);
    return f;
  }

  std::unique_ptr<GroupSaModel> MakeModel(const GroupSaConfig& config,
                                          uint64_t seed = 11) const {
    Rng rng(seed);
    return std::make_unique<GroupSaModel>(config, world.dataset.num_users,
                                          world.dataset.num_items, model_data,
                                          &rng);
  }
};

}  // namespace groupsa::core::testing

#endif  // GROUPSA_TESTS_CORE_TEST_FIXTURES_H_
