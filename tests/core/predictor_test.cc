#include "core/predictor.h"

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"

namespace groupsa::core {
namespace {

using tensor::Matrix;

GroupSaConfig SmallConfig() {
  GroupSaConfig c;
  c.embedding_dim = 6;
  c.predictor_hidden = {8, 4};
  c.dropout_ratio = 0.0f;
  return c;
}

TEST(RankPredictorTest, ScalarOutput) {
  Rng rng(1);
  RankPredictor predictor("p", SmallConfig(), &rng);
  ag::TensorPtr left = ag::Constant(Matrix(1, 6, 0.1f));
  ag::TensorPtr right = ag::Constant(Matrix(1, 6, -0.1f));
  ag::TensorPtr score =
      predictor.Score(nullptr, left, right, /*training=*/false, nullptr);
  EXPECT_EQ(score->rows(), 1);
  EXPECT_EQ(score->cols(), 1);
}

TEST(RankPredictorTest, OrderSensitive) {
  Rng rng(2);
  RankPredictor predictor("p", SmallConfig(), &rng);
  Matrix a(1, 6);
  Matrix b(1, 6);
  a.FillUniform(&rng, -1.0f, 1.0f);
  b.FillUniform(&rng, -1.0f, 1.0f);
  const float s_ab = predictor
                         .Score(nullptr, ag::Constant(a), ag::Constant(b),
                                false, nullptr)
                         ->scalar();
  const float s_ba = predictor
                         .Score(nullptr, ag::Constant(b), ag::Constant(a),
                                false, nullptr)
                         ->scalar();
  EXPECT_NE(s_ab, s_ba);
}

TEST(RankPredictorTest, DeterministicInference) {
  Rng rng(3);
  RankPredictor predictor("p", SmallConfig(), &rng);
  ag::TensorPtr left = ag::Constant(Matrix(1, 6, 0.5f));
  ag::TensorPtr right = ag::Constant(Matrix(1, 6, 0.2f));
  const float s1 =
      predictor.Score(nullptr, left, right, false, nullptr)->scalar();
  const float s2 =
      predictor.Score(nullptr, left, right, false, nullptr)->scalar();
  EXPECT_EQ(s1, s2);
}

TEST(RankPredictorTest, DropoutMakesTrainingStochastic) {
  Rng rng(4);
  GroupSaConfig c = SmallConfig();
  c.dropout_ratio = 0.5f;
  RankPredictor predictor("p", c, &rng);
  ag::TensorPtr left = ag::Constant(Matrix(1, 6, 0.5f));
  ag::TensorPtr right = ag::Constant(Matrix(1, 6, 0.2f));
  Rng drop_rng(5);
  ag::Tape tape;
  const float s1 =
      predictor.Score(&tape, left, right, /*training=*/true, &drop_rng)
          ->scalar();
  const float s2 =
      predictor.Score(&tape, left, right, /*training=*/true, &drop_rng)
          ->scalar();
  EXPECT_NE(s1, s2);
}

TEST(RankPredictorTest, GradientCheck) {
  Rng rng(6);
  RankPredictor predictor("p", SmallConfig(), &rng);
  ag::TensorPtr left = ag::Variable(Matrix(1, 6, 0.3f));
  ag::TensorPtr right = ag::Variable(Matrix(1, 6, -0.2f));
  std::vector<ag::TensorPtr> params = {left, right};
  for (const auto& p : predictor.Parameters()) params.push_back(p.tensor);
  auto result = ag::CheckGradients(
      [&](ag::Tape* tape) {
        return predictor.Score(tape, left, right, false, nullptr);
      },
      params);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

}  // namespace
}  // namespace groupsa::core
