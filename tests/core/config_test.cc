#include "core/config.h"

#include <gtest/gtest.h>

namespace groupsa::core {
namespace {

TEST(ConfigTest, DefaultEnablesEverything) {
  const GroupSaConfig c = GroupSaConfig::Default();
  EXPECT_EQ(c.variant, "GroupSA");
  EXPECT_TRUE(c.use_voting_scheme);
  EXPECT_TRUE(c.use_social_mask);
  EXPECT_TRUE(c.use_item_aggregation);
  EXPECT_TRUE(c.use_social_aggregation);
  EXPECT_TRUE(c.use_user_task);
  EXPECT_TRUE(c.user_modeling_enabled());
  EXPECT_FLOAT_EQ(c.effective_user_blend(), c.user_score_blend);
}

TEST(ConfigTest, GroupAVariant) {
  const GroupSaConfig c = GroupSaConfig::GroupA();
  EXPECT_EQ(c.variant, "Group-A");
  EXPECT_FALSE(c.use_voting_scheme);
  EXPECT_FALSE(c.user_modeling_enabled());
  EXPECT_FLOAT_EQ(c.effective_user_blend(), 0.0f);
}

TEST(ConfigTest, GroupSVariant) {
  const GroupSaConfig c = GroupSaConfig::GroupS();
  EXPECT_FALSE(c.use_voting_scheme);
  EXPECT_TRUE(c.user_modeling_enabled());
}

TEST(ConfigTest, GroupIVariant) {
  const GroupSaConfig c = GroupSaConfig::GroupI();
  EXPECT_FALSE(c.use_item_aggregation);
  EXPECT_TRUE(c.use_social_aggregation);
  EXPECT_TRUE(c.user_modeling_enabled());
}

TEST(ConfigTest, GroupFVariant) {
  const GroupSaConfig c = GroupSaConfig::GroupF();
  EXPECT_TRUE(c.use_item_aggregation);
  EXPECT_FALSE(c.use_social_aggregation);
}

TEST(ConfigTest, GroupGVariant) {
  const GroupSaConfig c = GroupSaConfig::GroupG();
  EXPECT_FALSE(c.use_user_task);
  EXPECT_TRUE(c.use_voting_scheme);
}

TEST(ConfigTest, NoSocialMaskVariant) {
  const GroupSaConfig c = GroupSaConfig::NoSocialMask();
  EXPECT_TRUE(c.use_voting_scheme);
  EXPECT_FALSE(c.use_social_mask);
}

TEST(ConfigTest, VariantNamesDistinct) {
  EXPECT_NE(GroupSaConfig::GroupA().variant, GroupSaConfig::GroupS().variant);
  EXPECT_NE(GroupSaConfig::GroupI().variant, GroupSaConfig::GroupF().variant);
  EXPECT_NE(GroupSaConfig::GroupG().variant,
            GroupSaConfig::Default().variant);
}

TEST(ConfigTest, PaperDefaults) {
  const GroupSaConfig c = GroupSaConfig::Default();
  EXPECT_EQ(c.embedding_dim, 32);  // Sec. III-E
  EXPECT_FLOAT_EQ(c.dropout_ratio, 0.1f);
  EXPECT_EQ(c.num_voting_layers, 1);
}

}  // namespace
}  // namespace groupsa::core
