#include "core/voting_scheme.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace groupsa::core {
namespace {

using tensor::Matrix;

GroupSaConfig SmallConfig(int layers = 2) {
  GroupSaConfig c;
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.num_voting_layers = layers;
  return c;
}

data::SocialGraph LineGraph(int n) {
  std::vector<std::pair<data::UserId, data::UserId>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return data::SocialGraph(n, edges);
}

TEST(VotingSchemeTest, MemberRepsShapeAndRounds) {
  Rng rng(1);
  VotingScheme voting(SmallConfig(3), &rng);
  Matrix embs(4, 8);
  embs.FillUniform(&rng, -0.1f, 0.1f);
  data::SocialGraph social = LineGraph(4);
  auto reps = voting.BuildMemberReps(nullptr, ag::Constant(embs),
                                     {0, 1, 2, 3}, social);
  EXPECT_EQ(reps.reps->rows(), 4);
  EXPECT_EQ(reps.reps->cols(), 8);
  EXPECT_EQ(reps.round_attention.size(), 3u);  // one per voting round (N_X)
}

TEST(VotingSchemeTest, SocialMaskZeroesNonFriendAttention) {
  Rng rng(2);
  VotingScheme voting(SmallConfig(1), &rng);
  Matrix embs(3, 8);
  embs.FillUniform(&rng, -0.5f, 0.5f);
  data::SocialGraph social = LineGraph(3);  // 0-1, 1-2; 0 and 2 disconnected
  auto reps =
      voting.BuildMemberReps(nullptr, ag::Constant(embs), {0, 1, 2}, social);
  ASSERT_EQ(reps.round_attention.size(), 1u);
  const Matrix& att = reps.round_attention[0];
  EXPECT_EQ(att.At(0, 2), 0.0f);
  EXPECT_EQ(att.At(2, 0), 0.0f);
  EXPECT_GT(att.At(0, 1), 0.0f);
  EXPECT_GT(att.At(1, 2), 0.0f);
}

TEST(VotingSchemeTest, MaskUsesMemberIdsNotPositions) {
  Rng rng(3);
  VotingScheme voting(SmallConfig(1), &rng);
  Matrix embs(2, 8);
  embs.FillUniform(&rng, -0.5f, 0.5f);
  // Users 5 and 7 connected; group of {5, 7}.
  data::SocialGraph social(10, {{5, 7}});
  auto reps =
      voting.BuildMemberReps(nullptr, ag::Constant(embs), {5, 7}, social);
  EXPECT_GT(reps.round_attention[0].At(0, 1), 0.0f);
  // Group of {5, 6}: not connected -> off-diagonal masked.
  auto reps2 =
      voting.BuildMemberReps(nullptr, ag::Constant(embs), {5, 6}, social);
  EXPECT_EQ(reps2.round_attention[0].At(0, 1), 0.0f);
}

TEST(VotingSchemeTest, DisabledVotingIsIdentity) {
  Rng rng(4);
  GroupSaConfig c = SmallConfig(1);
  c.use_voting_scheme = false;
  VotingScheme voting(c, &rng);
  Matrix embs(3, 8);
  embs.FillUniform(&rng, -0.5f, 0.5f);
  ag::TensorPtr input = ag::Constant(embs);
  auto reps =
      voting.BuildMemberReps(nullptr, input, {0, 1, 2}, LineGraph(3));
  EXPECT_EQ(reps.reps.get(), input.get());
  EXPECT_TRUE(reps.round_attention.empty());
}

TEST(VotingSchemeTest, NoMaskVariantAttendsEverywhere) {
  Rng rng(5);
  GroupSaConfig c = SmallConfig(1);
  c.use_social_mask = false;
  VotingScheme voting(c, &rng);
  Matrix embs(3, 8);
  embs.FillUniform(&rng, -0.5f, 0.5f);
  // Social graph has NO edges; without the mask attention is still dense.
  data::SocialGraph social(3, {});
  auto reps =
      voting.BuildMemberReps(nullptr, ag::Constant(embs), {0, 1, 2}, social);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      EXPECT_GT(reps.round_attention[0].At(i, j), 0.0f);
}

TEST(VotingSchemeTest, AggregateGroupShapesAndWeights) {
  Rng rng(6);
  VotingScheme voting(SmallConfig(1), &rng);
  Matrix embs(4, 8);
  embs.FillUniform(&rng, -0.5f, 0.5f);
  auto reps = voting.BuildMemberReps(nullptr, ag::Constant(embs),
                                     {0, 1, 2, 3}, LineGraph(4));
  ag::TensorPtr item = ag::Constant(Matrix(1, 8, 0.2f));
  auto group = voting.AggregateGroup(nullptr, reps, item);
  EXPECT_EQ(group.rep->rows(), 1);
  EXPECT_EQ(group.rep->cols(), 8);
  EXPECT_EQ(group.member_weights.cols(), 4);
  double total = 0.0;
  for (int c = 0; c < 4; ++c) total += group.member_weights.At(0, c);
  EXPECT_NEAR(total, 1.0, 1e-5);
}

TEST(VotingSchemeTest, DifferentItemsGiveDifferentMemberWeights) {
  // The expertise-adaptive property (Eq. 9): member weights depend on the
  // target item.
  Rng rng(7);
  VotingScheme voting(SmallConfig(1), &rng);
  Matrix embs(3, 8);
  embs.FillUniform(&rng, -1.0f, 1.0f);
  auto reps = voting.BuildMemberReps(nullptr, ag::Constant(embs), {0, 1, 2},
                                     LineGraph(3));
  Matrix item1(1, 8);
  Matrix item2(1, 8);
  item1.FillUniform(&rng, -1.0f, 1.0f);
  item2.FillUniform(&rng, -1.0f, 1.0f);
  auto g1 = voting.AggregateGroup(nullptr, reps, ag::Constant(item1));
  auto g2 = voting.AggregateGroup(nullptr, reps, ag::Constant(item2));
  EXPECT_FALSE(AllClose(g1.member_weights, g2.member_weights, 1e-6f));
}

TEST(VotingSchemeTest, SingletonGroupFullWeight) {
  Rng rng(8);
  VotingScheme voting(SmallConfig(1), &rng);
  Matrix embs(1, 8, 0.3f);
  auto reps = voting.BuildMemberReps(nullptr, ag::Constant(embs), {0},
                                     data::SocialGraph(1, {}));
  auto group = voting.AggregateGroup(nullptr, reps,
                                     ag::Constant(Matrix(1, 8, 0.1f)));
  EXPECT_FLOAT_EQ(group.member_weights.At(0, 0), 1.0f);
}

TEST(VotingSchemeTest, CommonNeighborClosenessUnmasksFriendsOfFriends) {
  Rng rng(9);
  GroupSaConfig c = SmallConfig(1);
  c.social_closeness = SocialCloseness::kCommonNeighbors;
  c.closeness_threshold = 0.0;  // any shared friend unmasks
  VotingScheme voting(c, &rng);
  Matrix embs(2, 8);
  embs.FillUniform(&rng, -0.5f, 0.5f);
  // Users 0 and 2 are NOT direct friends but share friend 1.
  data::SocialGraph social(3, {{0, 1}, {1, 2}});
  auto reps =
      voting.BuildMemberReps(nullptr, ag::Constant(embs), {0, 2}, social);
  EXPECT_GT(reps.round_attention[0].At(0, 1), 0.0f);

  // With the strict direct-edge mask the same pair stays masked.
  GroupSaConfig strict = SmallConfig(1);
  VotingScheme voting2(strict, &rng);
  auto reps2 =
      voting2.BuildMemberReps(nullptr, ag::Constant(embs), {0, 2}, social);
  EXPECT_EQ(reps2.round_attention[0].At(0, 1), 0.0f);
}

TEST(VotingSchemeTest, JaccardThresholdGates) {
  Rng rng(10);
  GroupSaConfig c = SmallConfig(1);
  c.social_closeness = SocialCloseness::kJaccard;
  c.closeness_threshold = 0.9;  // stricter than any proximity here
  VotingScheme voting(c, &rng);
  Matrix embs(2, 8);
  embs.FillUniform(&rng, -0.5f, 0.5f);
  data::SocialGraph social(4, {{0, 1}, {1, 2}, {0, 3}});
  auto reps =
      voting.BuildMemberReps(nullptr, ag::Constant(embs), {0, 2}, social);
  EXPECT_EQ(reps.round_attention[0].At(0, 1), 0.0f);
}

}  // namespace
}  // namespace groupsa::core
