#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/test_fixtures.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

GroupSaConfig FastConfig() {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  c.user_epochs = 2;
  c.group_epochs = 2;
  return c;
}

TEST(TrainerTest, UserLossDecreasesOverEpochs) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(1);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  const double first = trainer.RunUserEpoch().avg_loss;
  double last = first;
  for (int e = 0; e < 4; ++e) last = trainer.RunUserEpoch().avg_loss;
  EXPECT_LT(last, first);
}

TEST(TrainerTest, GroupLossDecreasesOverEpochs) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(2);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  const double first = trainer.RunGroupEpoch().avg_loss;
  double last = first;
  for (int e = 0; e < 5; ++e) last = trainer.RunGroupEpoch().avg_loss;
  EXPECT_LT(last, first);
}

TEST(TrainerTest, SocialEpochRunsAndReportsLoss) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(3);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  const auto stats = trainer.RunSocialEpoch();
  EXPECT_GT(stats.num_samples, 0);
  EXPECT_GT(stats.avg_loss, 0.0);
  // BPR at init hovers near ln 2.
  EXPECT_NEAR(stats.avg_loss, 0.693, 0.2);
}

TEST(TrainerTest, FitRunsConfiguredSchedule) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(4);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  const auto report = trainer.Fit();
  EXPECT_EQ(report.user_epochs.size(), 2u);
  EXPECT_EQ(report.group_epochs.size(), 2u);
  EXPECT_GT(report.total_seconds, 0.0);
}

TEST(TrainerTest, GroupGSkipsStageOne) {
  GroupSaConfig config = FastConfig();
  config.use_user_task = false;
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(5);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  const auto report = trainer.Fit();
  EXPECT_TRUE(report.user_epochs.empty());
  EXPECT_EQ(report.group_epochs.size(), 2u);
}

TEST(TrainerTest, TrainingImprovesGroupRankingOverInit) {
  GroupSaConfig config = FastConfig();
  config.user_epochs = 4;
  config.group_epochs = 4;
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);

  // Rank the observed training positives of each group against random items
  // before and after training; training must push positives up.
  auto avg_margin = [&]() {
    double margin = 0.0;
    int count = 0;
    for (const data::Edge& e : f.gi.train) {
      const auto scores =
          model->ScoreItemsForGroup(e.row, {e.item, (e.item + 7) % 90,
                                            (e.item + 31) % 90});
      margin += scores[0] - (scores[1] + scores[2]) / 2.0;
      ++count;
      if (count >= 30) break;
    }
    return margin / count;
  };

  const double before = avg_margin();
  Rng rng(6);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  trainer.Fit();
  const double after = avg_margin();
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace groupsa::core
