#include "core/user_modeling.h"

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"

namespace groupsa::core {
namespace {

using tensor::Matrix;

GroupSaConfig SmallConfig() {
  GroupSaConfig c;
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.fusion_hidden = {8};
  c.tie_latent_spaces = false;  // standalone component tests own tables
  return c;
}

TEST(UserModelingTest, LatentShape) {
  Rng rng(1);
  const GroupSaConfig c = SmallConfig();
  UserModeling um(c, 10, 20, &rng);
  ag::TensorPtr guide = ag::Constant(Matrix(1, 8, 0.1f));
  ag::TensorPtr h = um.BuildUserLatent(nullptr, guide, {1, 2, 3}, {4, 5},
                                       /*training=*/false, nullptr);
  EXPECT_EQ(h->rows(), 1);
  EXPECT_EQ(h->cols(), 8);
}

TEST(UserModelingTest, EmptyNeighbourhoodsStillProduceLatent) {
  Rng rng(2);
  const GroupSaConfig c = SmallConfig();
  UserModeling um(c, 10, 20, &rng);
  ag::TensorPtr guide = ag::Constant(Matrix(1, 8, 0.1f));
  ag::TensorPtr h =
      um.BuildUserLatent(nullptr, guide, {}, {}, false, nullptr);
  EXPECT_EQ(h->cols(), 8);
  // ReLU fusion output is non-negative.
  for (int i = 0; i < h->value().size(); ++i)
    EXPECT_GE(h->value().data()[i], 0.0f);
}

TEST(UserModelingTest, ItemOnlyVariantWorks) {
  Rng rng(3);
  GroupSaConfig c = SmallConfig();
  c.use_social_aggregation = false;
  UserModeling um(c, 10, 20, &rng);
  EXPECT_TRUE(um.has_item_space());
  ag::TensorPtr guide = ag::Constant(Matrix(1, 8, 0.1f));
  ag::TensorPtr h = um.BuildUserLatent(nullptr, guide, {0, 1}, {}, false,
                                       nullptr);
  EXPECT_EQ(h->cols(), 8);
}

TEST(UserModelingTest, SocialOnlyVariantHasNoItemSpace) {
  Rng rng(4);
  GroupSaConfig c = SmallConfig();
  c.use_item_aggregation = false;
  UserModeling um(c, 10, 20, &rng);
  EXPECT_FALSE(um.has_item_space());
  ag::TensorPtr guide = ag::Constant(Matrix(1, 8, 0.1f));
  ag::TensorPtr h = um.BuildUserLatent(nullptr, guide, {}, {2}, false,
                                       nullptr);
  EXPECT_EQ(h->cols(), 8);
}

TEST(UserModelingTest, ItemLatentLookup) {
  Rng rng(5);
  const GroupSaConfig c = SmallConfig();
  UserModeling um(c, 10, 20, &rng);
  ag::TensorPtr x = um.ItemLatent(nullptr, 7);
  EXPECT_EQ(x->rows(), 1);
  EXPECT_EQ(x->cols(), 8);
}

TEST(UserModelingTest, DifferentNeighbourhoodsDifferentLatents) {
  Rng rng(6);
  const GroupSaConfig c = SmallConfig();
  UserModeling um(c, 10, 20, &rng);
  ag::TensorPtr guide = ag::Constant(Matrix(1, 8, 0.1f));
  ag::TensorPtr h1 =
      um.BuildUserLatent(nullptr, guide, {0, 1}, {2}, false, nullptr);
  ag::TensorPtr h2 =
      um.BuildUserLatent(nullptr, guide, {5, 6}, {7}, false, nullptr);
  EXPECT_FALSE(AllClose(h1->value(), h2->value(), 1e-6f));
}

TEST(UserModelingTest, GradientsFlowToTables) {
  Rng rng(7);
  GroupSaConfig c = SmallConfig();
  c.dropout_ratio = 0.0f;
  UserModeling um(c, 6, 8, &rng);
  ag::TensorPtr guide = ag::Variable(Matrix(1, 8, 0.2f));
  std::vector<ag::TensorPtr> params = {guide};
  for (const auto& p : um.Parameters()) {
    // Push biases away from zero so no ReLU pre-activation sits within the
    // finite-difference step of its kink (where analytic and numeric
    // derivatives legitimately disagree).
    if (p.name.find("bias") != std::string::npos) {
      p.tensor->mutable_value().FillUniform(&rng, 0.05f, 0.15f);
    }
    params.push_back(p.tensor);
  }
  auto result = ag::CheckGradients(
      [&](ag::Tape* tape) {
        return ag::SumAll(tape, um.BuildUserLatent(tape, guide, {0, 3},
                                                   {1, 2}, false, nullptr));
      },
      params, /*step=*/5e-4f, /*abs_tolerance=*/8e-3f,
      /*rel_tolerance=*/6e-2f);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(UserModelingTest, TiedSpacesUseSharedTables) {
  Rng rng(8);
  GroupSaConfig c = SmallConfig();
  c.tie_latent_spaces = true;
  nn::Embedding user_table("u", 6, 8, &rng);
  nn::Embedding item_table("v", 8, 8, &rng);
  UserModeling um(c, 6, 8, &rng, &user_table, &item_table);
  // The item latent must be the shared item embedding row.
  ag::TensorPtr x = um.ItemLatent(nullptr, 3);
  EXPECT_TRUE(AllClose(x->value(), item_table.Row(3)));
  // No separate tables registered.
  for (const auto& p : um.Parameters()) {
    EXPECT_EQ(p.name.find("item_space"), std::string::npos);
    EXPECT_EQ(p.name.find("social_space"), std::string::npos);
  }
}

}  // namespace
}  // namespace groupsa::core
