#include "core/inference_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/thread_pool.h"
#include "core/test_fixtures.h"
#include "core/topk.h"
#include "core/trainer.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

GroupSaConfig SmallConfig() {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  return c;
}

// The ablation corners exercise every tower-selection branch of the engine:
// full model (latent blend + separate tower), Group-A (no user modeling, no
// blend), Group-I (latent falls back to the shared item embedding), and a
// fully untied variant (own group tower, own latent spaces, shared latent
// tower).
std::vector<GroupSaConfig> ParityConfigs() {
  std::vector<GroupSaConfig> configs;
  configs.push_back(SmallConfig());
  {
    GroupSaConfig c = GroupSaConfig::GroupA();
    c.embedding_dim = 8;
    c.attention_hidden = 8;
    c.ffn_hidden = 8;
    c.predictor_hidden = {8};
    c.fusion_hidden = {8};
    configs.push_back(c);
  }
  {
    GroupSaConfig c = GroupSaConfig::GroupI();
    c.embedding_dim = 8;
    c.attention_hidden = 8;
    c.ffn_hidden = 8;
    c.predictor_hidden = {8};
    c.fusion_hidden = {8};
    configs.push_back(c);
  }
  {
    GroupSaConfig c = SmallConfig();
    c.share_predictors = false;
    c.separate_latent_tower = false;
    c.tie_latent_spaces = false;
    c.use_enhanced_member_reps = true;
    configs.push_back(c);
  }
  {
    // Attention wider than the engine's fused-loop cap (128) so the buffered
    // Gemm fallback inside ScoreBatchGroup is exercised too.
    GroupSaConfig c = SmallConfig();
    c.attention_hidden = 144;
    configs.push_back(c);
  }
  return configs;
}

std::vector<data::ItemId> Catalog(int n) { return AllItems(n); }

// Runs `body` at pool widths 1 and 4, restoring the serial default after.
// The 0-ULP contract must hold at every width (tensor::Gemm is bit-stable
// across widths, so per-item and batched agree everywhere or nowhere).
void AtThreads(const std::function<void()>& body) {
  for (int threads : {1, 4}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    parallel::SetGlobalThreads(threads);
    body();
  }
  parallel::SetGlobalThreads(1);
}

TEST(InferenceEngineTest, GroupScoresBitIdenticalToPerItemPath) {
  for (const GroupSaConfig& config : ParityConfigs()) {
    SCOPED_TRACE(config.variant);
    const TinyFixture f = TinyFixture::Make(config);
    auto model = f.MakeModel(config);
    const auto items = Catalog(model->num_items());
    AtThreads([&] {
      for (data::GroupId g : {0, 3, 7}) {
        const auto batched = model->ScoreItemsForGroup(g, items);
        const auto reference = model->ScoreItemsForGroupPerItem(g, items);
        EXPECT_EQ(batched, reference) << "group " << g;
      }
    });
  }
}

TEST(InferenceEngineTest, UserScoresBitIdenticalToPerItemPath) {
  for (const GroupSaConfig& config : ParityConfigs()) {
    SCOPED_TRACE(config.variant);
    const TinyFixture f = TinyFixture::Make(config);
    auto model = f.MakeModel(config);
    const auto items = Catalog(model->num_items());
    AtThreads([&] {
      for (data::UserId u : {0, 5, 11}) {
        const auto batched = model->ScoreItemsForUser(u, items);
        const auto reference = model->ScoreItemsForUserPerItem(u, items);
        EXPECT_EQ(batched, reference) << "user " << u;
      }
    });
  }
}

TEST(InferenceEngineTest, MemberScoresBitIdenticalToPerItemPath) {
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const auto items = Catalog(model->num_items());
  const std::vector<data::UserId> members = {2, 9, 14};
  AtThreads([&] {
    EXPECT_EQ(model->ScoreItemsForMembers(members, items),
              model->ScoreItemsForMembersPerItem(members, items));
    const auto matrix = model->MemberItemScores(members, items);
    ASSERT_EQ(matrix.size(), members.size());
    for (size_t m = 0; m < members.size(); ++m)
      EXPECT_EQ(matrix[m], model->ScoreItemsForUserPerItem(members[m], items));
  });
}

TEST(InferenceEngineTest, ConcurrentScoringMatchesSerial) {
  // The evaluator fans ranking cases across the pool with grain 1; the
  // engine's shared cache must stay consistent under that pattern.
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const auto items = Catalog(model->num_items());
  const int num_groups = f.world.dataset.groups.num_groups();

  std::vector<std::vector<double>> serial(num_groups);
  for (int g = 0; g < num_groups; ++g)
    serial[g] = model->ScoreItemsForGroupPerItem(g, items);

  parallel::SetGlobalThreads(4);
  model->inference().InvalidateAll();
  std::vector<std::vector<double>> concurrent(num_groups);
  parallel::ParallelFor(0, num_groups, 1, [&](int64_t begin, int64_t end) {
    for (int64_t g = begin; g < end; ++g)
      concurrent[g] = model->ScoreItemsForGroup(static_cast<int>(g), items);
  });
  parallel::SetGlobalThreads(1);
  EXPECT_EQ(concurrent, serial);
  EXPECT_EQ(model->inference().cached_groups(),
            static_cast<size_t>(num_groups));
}

TEST(InferenceEngineTest, CacheInvalidatedByOptimizerStep) {
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const auto items = Catalog(model->num_items());

  const auto before = model->ScoreItemsForGroup(0, items);
  EXPECT_GT(model->inference().cached_groups(), 0u);
  const uint64_t version_before = model->inference().params_version();

  // Real gradients, real Adam steps.
  Rng rng(7);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  trainer.RunGroupEpoch();

  EXPECT_GT(model->inference().params_version(), version_before);
  const auto after = model->ScoreItemsForGroup(0, items);
  // The stale cache must not survive: post-step scores reflect the new
  // parameters (bit-identical to the per-item path and to an engine built
  // fresh after the step) and differ from the pre-step scores.
  EXPECT_EQ(after, model->ScoreItemsForGroupPerItem(0, items));
  InferenceEngine fresh(model.get());
  EXPECT_EQ(after, fresh.ScoreItemsForGroup(0, items));
  EXPECT_NE(after, before);

  const auto user_before = model->ScoreItemsForUser(3, items);
  trainer.RunUserEpoch();
  const auto user_after = model->ScoreItemsForUser(3, items);
  EXPECT_EQ(user_after, model->ScoreItemsForUserPerItem(3, items));
  EXPECT_NE(user_after, user_before);
}

TEST(InferenceEngineTest, RecommendMatchesFullSortReference) {
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  const auto items = Catalog(model->num_items());
  const int k = 10;

  const auto scores = model->ScoreItemsForGroupPerItem(2, items);
  std::vector<std::pair<data::ItemId, double>> reference;
  for (size_t v = 0; v < scores.size(); ++v)
    reference.emplace_back(static_cast<data::ItemId>(v), scores[v]);
  std::sort(reference.begin(), reference.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  reference.resize(k);

  EXPECT_EQ(model->RecommendForGroup(2, k, nullptr), reference);
}

TEST(InferenceEngineTest, RecommendRespectsExcludeMatrix) {
  const GroupSaConfig config = SmallConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);

  const auto top = model->RecommendForGroup(1, 20, &f.gi_train);
  for (const auto& [item, score] : top) EXPECT_FALSE(f.gi_train.Has(1, item));

  const auto user_top = model->RecommendForUser(4, 20, &f.ui_train);
  for (const auto& [item, score] : user_top)
    EXPECT_FALSE(f.ui_train.Has(4, item));
}

TEST(TopKItemsTest, SelectsAndOrdersWithStableTieBreak) {
  const std::vector<double> scores = {0.5, 2.0, 2.0, -1.0, 3.0, 0.5};
  const auto top = TopKItems(scores, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], std::make_pair(data::ItemId{4}, 3.0));
  // Equal scores rank by ascending item id.
  EXPECT_EQ(top[1], std::make_pair(data::ItemId{1}, 2.0));
  EXPECT_EQ(top[2], std::make_pair(data::ItemId{2}, 2.0));
}

TEST(TopKItemsTest, SkipFilterAndShortInputs) {
  const std::vector<double> scores = {0.1, 0.9, 0.4};
  const auto top =
      TopKItems(scores, 5, [](data::ItemId item) { return item == 1; });
  ASSERT_EQ(top.size(), 2u);  // k > survivors: everything kept, sorted
  EXPECT_EQ(top[0].first, 2);
  EXPECT_EQ(top[1].first, 0);
  EXPECT_TRUE(TopKItems(scores, 0).empty());
  EXPECT_TRUE(TopKItems({}, 3).empty());
}

}  // namespace
}  // namespace groupsa::core
