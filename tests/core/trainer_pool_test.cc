#include <gtest/gtest.h>

#include <string>

#include "common/thread_pool.h"
#include "core/test_fixtures.h"
#include "core/trainer.h"
#include "nn/checkpoint.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

GroupSaConfig PoolConfig(int threads) {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  c.user_epochs = 2;
  c.group_epochs = 2;
  c.threads = threads;
  return c;
}

std::string TrainAndEncode(int threads, bool pooling) {
  const GroupSaConfig config = PoolConfig(threads);
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(17);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);
  trainer.set_tensor_pooling(pooling);
  trainer.Fit();
  return nn::EncodeParameters(model->Parameters());
}

// The tentpole guarantee: recycling every per-batch tensor changes nothing
// about the numbers. Pooled and unpooled training produce byte-identical
// parameters, at any thread count.
TEST(TrainerPoolTest, PooledTrainingIsByteIdenticalToUnpooled) {
  const std::string unpooled_t1 = TrainAndEncode(1, /*pooling=*/false);
  const std::string pooled_t1 = TrainAndEncode(1, /*pooling=*/true);
  EXPECT_EQ(pooled_t1, unpooled_t1);

  const std::string pooled_t4 = TrainAndEncode(4, /*pooling=*/true);
  EXPECT_EQ(pooled_t4, unpooled_t1);
}

// The social epoch's graph is shape-uniform (every sample records the same
// op skeleton with the same shapes), so one warm-up epoch must teach every
// shard's pool everything it will ever need: afterwards the created/bytes
// counters stop moving no matter how long training runs.
void ExpectSteadyStateZeroGrowth(int threads) {
  const GroupSaConfig config = PoolConfig(threads);
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(23);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);

  trainer.RunSocialEpoch();  // warm-up: every shard sees every shape
  const ag::TensorPool::Stats warm = trainer.PoolStats();
  EXPECT_GT(warm.tensors_created, 0u);
  EXPECT_EQ(warm.escaped, 0u) << "trainer leaked batch tensors";

  trainer.RunSocialEpoch();
  trainer.RunSocialEpoch();
  const ag::TensorPool::Stats steady = trainer.PoolStats();
  EXPECT_EQ(steady.tensors_created, warm.tensors_created)
      << "steady-state batches allocated fresh tensors";
  EXPECT_EQ(steady.workspaces_created, warm.workspaces_created)
      << "steady-state batches allocated fresh workspaces";
  EXPECT_EQ(steady.bytes, warm.bytes) << "pool kept growing";
  EXPECT_EQ(steady.escaped, 0u);
  EXPECT_GT(steady.tensors_reused, warm.tensors_reused);
}

TEST(TrainerPoolTest, SteadyStateAllocatesNothingSingleThread) {
  ExpectSteadyStateZeroGrowth(1);
}

TEST(TrainerPoolTest, SteadyStateAllocatesNothingFourThreads) {
  ExpectSteadyStateZeroGrowth(4);
}

// The shard structure — and with it every pool's request stream — is a pure
// function of the data and the seed, so the aggregate counters must not
// depend on the thread count.
TEST(TrainerPoolTest, PoolStatsAreThreadCountInvariant) {
  auto stats_at = [](int threads) {
    const GroupSaConfig config = PoolConfig(threads);
    const TinyFixture f = TinyFixture::Make(config);
    auto model = f.MakeModel(config);
    Rng rng(31);
    Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                    &f.gi_train, &rng);
    trainer.RunUserEpoch();
    trainer.RunGroupEpoch();
    return trainer.PoolStats();
  };
  const ag::TensorPool::Stats t1 = stats_at(1);
  const ag::TensorPool::Stats t4 = stats_at(4);
  EXPECT_EQ(t1.tensors_created, t4.tensors_created);
  EXPECT_EQ(t1.tensors_reused, t4.tensors_reused);
  EXPECT_EQ(t1.workspaces_created, t4.workspaces_created);
  EXPECT_EQ(t1.workspaces_reused, t4.workspaces_reused);
  EXPECT_EQ(t1.bytes, t4.bytes);
  EXPECT_EQ(t1.escaped, 0u);
  EXPECT_EQ(t4.escaped, 0u);
}

// User/group epochs have data-dependent shapes (member counts, neighbor
// lists), so their pools warm the union of shapes each shard encounters —
// but nothing may leak, and disabling pooling must keep the counters at
// zero.
TEST(TrainerPoolTest, MixedEpochsNeverLeakAndToggleDisablesPooling) {
  const GroupSaConfig config = PoolConfig(1);
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  Rng rng(41);
  Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                  &f.gi_train, &rng);

  trainer.set_tensor_pooling(false);
  trainer.RunUserEpoch();
  EXPECT_EQ(trainer.PoolStats().tensors_created, 0u);
  EXPECT_EQ(trainer.PoolStats().batches, 0u);

  trainer.set_tensor_pooling(true);
  trainer.RunUserEpoch();
  trainer.RunGroupEpoch();
  const ag::TensorPool::Stats stats = trainer.PoolStats();
  EXPECT_GT(stats.tensors_created, 0u);
  EXPECT_GT(stats.tensors_reused, 0u);
  EXPECT_EQ(stats.escaped, 0u);
  EXPECT_GT(trainer.num_shard_contexts(), 0u);
}

}  // namespace
}  // namespace groupsa::core
