#include <cmath>

#include "core/fast_recommender.h"

#include <gtest/gtest.h>

#include "core/test_fixtures.h"

namespace groupsa::core {
namespace {

using core::testing::TinyFixture;

GroupSaConfig FastConfig() {
  GroupSaConfig c = GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  return c;
}

TEST(FastRecommenderTest, AveragesMemberScores) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  FastGroupRecommender fast(model.get());
  const std::vector<data::UserId> members = {0, 1, 2};
  const std::vector<data::ItemId> items = {3, 4};
  const auto fast_scores = fast.ScoreItemsForMembers(members, items);
  const auto per_member = model->MemberItemScores(members, items);
  for (size_t i = 0; i < items.size(); ++i) {
    const double expected =
        (per_member[0][i] + per_member[1][i] + per_member[2][i]) / 3.0;
    EXPECT_NEAR(fast_scores[i], expected, 1e-9);
  }
}

TEST(FastRecommenderTest, SingleMemberEqualsUserScores) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  FastGroupRecommender fast(model.get());
  const std::vector<data::ItemId> items = {0, 1, 2};
  const auto fast_scores = fast.ScoreItemsForMembers({5}, items);
  const auto user_scores = model->ScoreItemsForUser(5, items);
  for (size_t i = 0; i < items.size(); ++i)
    EXPECT_NEAR(fast_scores[i], user_scores[i], 1e-9);
}

TEST(FastRecommenderTest, RecommendTopKSortedAndSized) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  FastGroupRecommender fast(model.get());
  const auto top = fast.RecommendForMembers({0, 1}, 10);
  EXPECT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i)
    EXPECT_GE(top[i - 1].second, top[i].second);
}

TEST(FastRecommenderTest, RecommendExcludesItemsSeenByAnyMember) {
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  FastGroupRecommender fast(model.get());
  const std::vector<data::UserId> members = {0, 1, 2};

  const auto top = fast.RecommendForMembers(members, 15, &f.ui_train);
  EXPECT_FALSE(top.empty());
  for (const auto& [item, score] : top)
    for (data::UserId member : members)
      EXPECT_FALSE(f.ui_train.Has(member, item))
          << "item " << item << " seen by member " << member;

  // Excluded items must be exactly the filtered prefix of the unfiltered
  // ranking: filtering happens before selection, not by truncation.
  const auto unfiltered =
      fast.RecommendForMembers(members, model->num_items(), nullptr);
  std::vector<std::pair<data::ItemId, double>> expect;
  for (const auto& entry : unfiltered) {
    bool seen = false;
    for (data::UserId member : members)
      seen = seen || f.ui_train.Has(member, entry.first);
    if (!seen) expect.push_back(entry);
    if (expect.size() == 15u) break;
  }
  EXPECT_EQ(top, expect);
}

TEST(FastRecommenderTest, FasterThanFullPathOnLargeGroups) {
  // The Sec. II-F claim: per additional candidate item, the fast path costs
  // one tower pass per member but no voting-network pass. We check it is at
  // least not slower at tiny scale (smoke-level sanity; the real comparison
  // lives in bench_micro_model).
  const GroupSaConfig config = FastConfig();
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  FastGroupRecommender fast(model.get());
  std::vector<data::ItemId> items(60);
  for (int i = 0; i < 60; ++i) items[i] = i;
  const std::vector<data::UserId> members = {0, 1, 2, 3, 4, 5};
  // Just verify both paths complete and produce finite scores.
  const auto full = model->ScoreItemsForMembers(members, items);
  const auto quick = fast.ScoreItemsForMembers(members, items);
  for (double s : full) EXPECT_TRUE(std::isfinite(s));
  for (double s : quick) EXPECT_TRUE(std::isfinite(s));
}

}  // namespace
}  // namespace groupsa::core
