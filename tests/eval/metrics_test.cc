#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace groupsa::eval {
namespace {

TEST(MetricsTest, HitRatioBoundary) {
  EXPECT_EQ(HitRatioAtK(0, 5), 1.0);
  EXPECT_EQ(HitRatioAtK(4, 5), 1.0);
  EXPECT_EQ(HitRatioAtK(5, 5), 0.0);
  EXPECT_EQ(HitRatioAtK(100, 5), 0.0);
}

TEST(MetricsTest, NdcgTopRankIsOne) { EXPECT_DOUBLE_EQ(NdcgAtK(0, 10), 1.0); }

TEST(MetricsTest, NdcgDecaysWithRank) {
  EXPECT_GT(NdcgAtK(0, 10), NdcgAtK(1, 10));
  EXPECT_GT(NdcgAtK(1, 10), NdcgAtK(5, 10));
  EXPECT_NEAR(NdcgAtK(1, 10), 1.0 / std::log2(3.0), 1e-12);
}

TEST(MetricsTest, NdcgZeroOutsideTopK) {
  EXPECT_EQ(NdcgAtK(5, 5), 0.0);
  EXPECT_EQ(NdcgAtK(10, 5), 0.0);
}

TEST(MetricsTest, NdcgNeverExceedsHitRatio) {
  for (int rank = 0; rank < 20; ++rank) {
    for (int k : {1, 5, 10}) {
      EXPECT_LE(NdcgAtK(rank, k), HitRatioAtK(rank, k));
      EXPECT_GE(NdcgAtK(rank, k), 0.0);
    }
  }
}

TEST(MetricsTest, RankOfPositiveCountsHigherScores) {
  EXPECT_EQ(RankOfPositive(5.0, {1.0, 2.0, 3.0}), 0);
  EXPECT_EQ(RankOfPositive(2.5, {1.0, 2.0, 3.0}), 1);
  EXPECT_EQ(RankOfPositive(0.5, {1.0, 2.0, 3.0}), 3);
}

TEST(MetricsTest, RankOfPositiveTiesArePessimistic) {
  // A constant scorer gives the positive the worst rank, not the best.
  EXPECT_EQ(RankOfPositive(1.0, {1.0, 1.0, 1.0}), 3);
}

TEST(MetricsTest, AggregateRanksAverages) {
  // Ranks 0 and 9: HR@5 = 0.5, HR@10 = 1.0.
  const EvalResult r = AggregateRanks({0, 9}, {5, 10});
  EXPECT_EQ(r.num_cases, 2);
  EXPECT_DOUBLE_EQ(r.HitRatio(5), 0.5);
  EXPECT_DOUBLE_EQ(r.HitRatio(10), 1.0);
  EXPECT_NEAR(r.Ndcg(10), (1.0 + 1.0 / std::log2(11.0)) / 2.0, 1e-12);
}

TEST(MetricsTest, AggregateEmptyRanks) {
  const EvalResult r = AggregateRanks({}, {5});
  EXPECT_EQ(r.num_cases, 0);
  EXPECT_EQ(r.HitRatio(5), 0.0);
}

TEST(MetricsTest, ToStringContainsMetrics) {
  const EvalResult r = AggregateRanks({0}, {5, 10});
  const std::string s = r.ToString();
  EXPECT_NE(s.find("HR@5"), std::string::npos);
  EXPECT_NE(s.find("NDCG@10"), std::string::npos);
}

TEST(MetricsTest, MrrBasics) {
  EXPECT_DOUBLE_EQ(MrrAtK(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(MrrAtK(1, 10), 0.5);
  EXPECT_DOUBLE_EQ(MrrAtK(4, 10), 0.2);
  EXPECT_DOUBLE_EQ(MrrAtK(10, 10), 0.0);
}

TEST(MetricsTest, PrecisionBasics) {
  EXPECT_DOUBLE_EQ(PrecisionAtK(0, 5), 0.2);
  EXPECT_DOUBLE_EQ(PrecisionAtK(4, 5), 0.2);
  EXPECT_DOUBLE_EQ(PrecisionAtK(5, 5), 0.0);
}

TEST(MetricsTest, MrrNeverExceedsHitRatio) {
  for (int rank = 0; rank < 15; ++rank) {
    for (int k : {1, 5, 10}) {
      EXPECT_LE(MrrAtK(rank, k), HitRatioAtK(rank, k));
    }
  }
}

TEST(MetricsTest, AggregateIncludesMrrAndPrecision) {
  const EvalResult r = AggregateRanks({0, 9}, {10});
  EXPECT_DOUBLE_EQ(r.Mrr(10), (1.0 + 0.1) / 2.0);
  EXPECT_DOUBLE_EQ(r.Precision(10), 0.1);
}

}  // namespace
}  // namespace groupsa::eval
