#include "eval/evaluator.h"

#include <gtest/gtest.h>

namespace groupsa::eval {
namespace {

using data::Edge;
using data::EdgeList;
using data::InteractionMatrix;
using data::ItemId;

TEST(BuildRankingCasesTest, OneCasePerTestEdge) {
  const EdgeList test = {{0, 5}, {1, 7}};
  const InteractionMatrix observed(2, 100, {{0, 5}, {1, 7}, {1, 8}});
  Rng rng(1);
  const auto cases = BuildRankingCases(test, observed, 20, &rng);
  ASSERT_EQ(cases.size(), 2u);
  EXPECT_EQ(cases[0].entity, 0);
  EXPECT_EQ(cases[0].positive, 5);
  EXPECT_EQ(cases[0].candidates.size(), 20u);
}

TEST(BuildRankingCasesTest, CandidatesExcludeAllObserved) {
  const EdgeList test = {{0, 5}};
  const InteractionMatrix observed(1, 50, {{0, 5}, {0, 6}, {0, 7}});
  Rng rng(2);
  const auto cases = BuildRankingCases(test, observed, 30, &rng);
  ASSERT_EQ(cases.size(), 1u);
  for (ItemId c : cases[0].candidates) {
    EXPECT_NE(c, 5);
    EXPECT_NE(c, 6);
    EXPECT_NE(c, 7);
  }
}

TEST(BuildRankingCasesTest, SkipsRowsWithTooFewFreeItems) {
  const EdgeList test = {{0, 1}};
  const InteractionMatrix observed(1, 10, {{0, 1}, {0, 2}});
  Rng rng(3);
  EXPECT_TRUE(BuildRankingCases(test, observed, 50, &rng).empty());
}

TEST(EvaluateRankingTest, PerfectScorerGetsFullMarks) {
  const EdgeList test = {{0, 5}, {1, 7}};
  const InteractionMatrix observed(2, 100, {{0, 5}, {1, 7}});
  Rng rng(4);
  const auto cases = BuildRankingCases(test, observed, 50, &rng);
  // Scorer that puts the positive (first item) on top.
  const Scorer perfect = [](int32_t,
                            const std::vector<ItemId>& items) {
    std::vector<double> scores(items.size(), 0.0);
    scores[0] = 1.0;
    return scores;
  };
  const EvalResult r = EvaluateRanking(cases, perfect, {5, 10});
  EXPECT_DOUBLE_EQ(r.HitRatio(5), 1.0);
  EXPECT_DOUBLE_EQ(r.Ndcg(10), 1.0);
}

TEST(EvaluateRankingTest, AntiPerfectScorerGetsZero) {
  const EdgeList test = {{0, 5}};
  const InteractionMatrix observed(1, 100, {{0, 5}});
  Rng rng(5);
  const auto cases = BuildRankingCases(test, observed, 50, &rng);
  const Scorer worst = [](int32_t, const std::vector<ItemId>& items) {
    std::vector<double> scores(items.size(), 1.0);
    scores[0] = -1.0;
    return scores;
  };
  const EvalResult r = EvaluateRanking(cases, worst, {5, 10});
  EXPECT_DOUBLE_EQ(r.HitRatio(10), 0.0);
}

TEST(EvaluateRankingTest, RandomScorerNearTheoreticalHitRate) {
  // With 1 positive among 1+50 items, HR@5 of a random scorer ~ 5/51.
  EdgeList test;
  for (int i = 0; i < 400; ++i) test.push_back({i, 0});
  const InteractionMatrix observed(400, 200, test);
  Rng rng(6);
  const auto cases = BuildRankingCases(test, observed, 50, &rng);
  Rng score_rng(7);
  const Scorer random = [&](int32_t, const std::vector<ItemId>& items) {
    std::vector<double> scores(items.size());
    for (double& s : scores) s = score_rng.NextDouble();
    return scores;
  };
  const EvalResult r = EvaluateRanking(cases, random, {5});
  EXPECT_NEAR(r.HitRatio(5), 5.0 / 51.0, 0.04);
}

TEST(EvaluateRankingFilteredTest, FilterRestrictsCases) {
  const EdgeList test = {{0, 5}, {1, 7}, {2, 9}};
  const InteractionMatrix observed(3, 100, test);
  Rng rng(8);
  const auto cases = BuildRankingCases(test, observed, 20, &rng);
  const Scorer perfect = [](int32_t, const std::vector<ItemId>& items) {
    std::vector<double> scores(items.size(), 0.0);
    scores[0] = 1.0;
    return scores;
  };
  const EvalResult r = EvaluateRankingFiltered(
      cases, perfect, {5}, [](int32_t entity) { return entity != 1; });
  EXPECT_EQ(r.num_cases, 2);
}

}  // namespace
}  // namespace groupsa::eval
