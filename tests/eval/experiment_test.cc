#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace groupsa::eval {
namespace {

TEST(MultiSeedResultTest, CollectsSamples) {
  MultiSeedResult result;
  result.Add("hr", 0.5);
  result.Add("hr", 0.7);
  EXPECT_TRUE(result.Has("hr"));
  EXPECT_FALSE(result.Has("ndcg"));
  EXPECT_DOUBLE_EQ(result.MeanOf("hr"), 0.6);
  EXPECT_NEAR(result.StdDevOf("hr"), 0.1414, 1e-3);
}

TEST(MultiSeedResultTest, SingleSampleHasZeroStdDev) {
  MultiSeedResult result;
  result.Add("m", 1.0);
  EXPECT_DOUBLE_EQ(result.StdDevOf("m"), 0.0);
}

TEST(MultiSeedResultTest, MetricNamesSorted) {
  MultiSeedResult result;
  result.Add("b", 1.0);
  result.Add("a", 2.0);
  const auto names = result.MetricNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(MultiSeedResultTest, CompareRunsPairedTTest) {
  MultiSeedResult result;
  for (double v : {0.9, 0.91, 0.89, 0.9}) result.Add("model", v);
  for (double v : {0.5, 0.51, 0.49, 0.5}) result.Add("baseline", v);
  const TTestResult t = result.Compare("model", "baseline");
  EXPECT_LT(t.p_value, 0.01);
  EXPECT_NEAR(t.mean_difference, 0.4, 1e-9);
}

TEST(RunSeedsTest, RunsRequestedRepetitions) {
  std::vector<uint64_t> seeds;
  MultiSeedResult result =
      RunSeeds(5, 100, [&](int index, uint64_t seed, MultiSeedResult* r) {
        seeds.push_back(seed);
        r->Add("metric", static_cast<double>(index));
      });
  EXPECT_EQ(seeds.size(), 5u);
  EXPECT_EQ(result.Samples("metric").size(), 5u);
  // Per-seed streams are decorrelated (all distinct).
  for (size_t i = 0; i < seeds.size(); ++i)
    for (size_t j = i + 1; j < seeds.size(); ++j)
      EXPECT_NE(seeds[i], seeds[j]);
}

}  // namespace
}  // namespace groupsa::eval
