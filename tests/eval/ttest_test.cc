#include "eval/ttest.h"

#include <cmath>

#include <gtest/gtest.h>

namespace groupsa::eval {
namespace {

TEST(TTestTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(SampleStdDev({1, 2, 3}), 1.0);
}

TEST(TTestTest, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(TTestTest, IncompleteBetaKnownValue) {
  // I_{0.5}(1, 1) = 0.5 (uniform CDF).
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.5), 0.5, 1e-10);
  // I_x(1, 1) = x.
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.37), 0.37, 1e-10);
}

TEST(TTestTest, StudentTSymmetricAndMonotone) {
  EXPECT_NEAR(StudentTTwoSidedP(0.0, 10.0), 1.0, 1e-10);
  EXPECT_NEAR(StudentTTwoSidedP(-2.0, 10.0), StudentTTwoSidedP(2.0, 10.0),
              1e-10);
  EXPECT_GT(StudentTTwoSidedP(1.0, 10.0), StudentTTwoSidedP(2.0, 10.0));
}

TEST(TTestTest, StudentTKnownQuantile) {
  // For df = 4, t = 2.776 corresponds to two-sided p = 0.05.
  EXPECT_NEAR(StudentTTwoSidedP(2.776, 4.0), 0.05, 2e-3);
  // For df = 10, t = 2.228 -> p = 0.05.
  EXPECT_NEAR(StudentTTwoSidedP(2.228, 10.0), 0.05, 2e-3);
}

TEST(TTestTest, PairedIdenticalSamplesGivePOne) {
  const TTestResult r = PairedTTest({1, 2, 3, 4}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_difference, 0.0);
}

TEST(TTestTest, PairedConstantShiftGivesPZero) {
  const TTestResult r = PairedTTest({2, 3, 4, 5}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(r.p_value, 0.0);
  EXPECT_DOUBLE_EQ(r.mean_difference, 1.0);
}

TEST(TTestTest, PairedKnownExample) {
  // Differences: {1, 2, 3, 4, 5}; mean 3, sd sqrt(2.5), n 5.
  // t = 3 / (sqrt(2.5)/sqrt(5)) = 4.2426, df = 4 -> p ~ 0.0132.
  const TTestResult r =
      PairedTTest({2, 4, 6, 8, 10}, {1, 2, 3, 4, 5});
  EXPECT_NEAR(r.t_statistic, 4.2426, 1e-3);
  EXPECT_NEAR(r.p_value, 0.0132, 2e-3);
  EXPECT_DOUBLE_EQ(r.degrees_of_freedom, 4.0);
}

TEST(TTestTest, LargeDifferenceGivesSmallP) {
  const TTestResult r = PairedTTest({10.0, 10.1, 9.9, 10.05, 9.95},
                                    {1.0, 1.1, 0.9, 1.05, 0.95});
  EXPECT_LT(r.p_value, 0.01);
}

TEST(TTestTest, NoisyEqualMeansGiveLargeP) {
  const TTestResult r = PairedTTest({1.0, 2.0, 3.0, 4.0},
                                    {1.1, 1.9, 3.1, 3.9});
  EXPECT_GT(r.p_value, 0.5);
}

}  // namespace
}  // namespace groupsa::eval
