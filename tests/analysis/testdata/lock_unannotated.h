// Fixture: rule lock-unannotated. A mutex-owning class must state a
// contract (GROUPSA_GUARDED_BY / GROUPSA_NOT_GUARDED) for every mutable,
// non-exempt data member; mutex-free types need nothing.
#include <atomic>
#include <string>

namespace fixture {

class Guarded {
 public:
  void Tick();

 private:
  DebugMutex mu_{"fixture.guarded"};
  int hits_ GROUPSA_GUARDED_BY(mu_) = 0;
  std::string label_;
  double weight_ = 1.0;
  std::atomic<int> calls_{0};
  const int limit_ = 8;
  DebugCondVar cv_;
  std::vector<int> backlog_ GROUPSA_NOT_GUARDED("touched in ctor only");
};

struct Plain {
  int unannotated = 0;
  std::string also_fine;
};

}  // namespace fixture
