// Lint fixture (never compiled): banned-time rule.
// time( in this comment must not count.
#include <chrono>
#include <ctime>

static const char* kMessage = "time(now)";  // string content must not count

long WallSeconds() { return time(nullptr); }  // finding

double MonotonicSeconds() {
  const auto t = std::chrono::steady_clock::now();  // finding
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long CpuTicks() { return clock(); }  // finding
