// Fixture: rule naked-mutex. Raw standard mutex/cond-var primitives are
// flagged everywhere except common/debug_mutex.{h,cc}; the Debug* wrappers
// and the std lock adapters over them stay clean.
#include <mutex>

namespace fixture {

std::mutex g_mu;
std::shared_mutex g_rw;
std::condition_variable g_cv;
std::recursive_mutex g_rec;

struct Wrapped {
  DebugMutex mu{"fixture.wrapped"};
  DebugCondVar cv;
  int n GROUPSA_GUARDED_BY(mu) = 0;
};

void Use() {
  std::lock_guard<DebugMutex> lock(g_mu);  // the adapter itself is fine
  (void)lock;
}

}  // namespace fixture
