// Lint fixture (never compiled): unordered-iter rule.
#include <unordered_set>
#include <vector>

struct Slot {
  std::unordered_set<int>* touched_rows = nullptr;
};

float SumLocalDeclaration(const std::unordered_set<int>& weights) {
  float total = 0.0f;
  for (int w : weights) total += w;  // finding: local unordered, += body
  return total;
}

float SumThroughMember(const Slot& slot) {
  float total = 0.0f;
  for (int r : *slot.touched_rows) total += r;  // finding: member access
  return total;
}

int CountWithoutAccumulation(const std::unordered_set<int>& ids) {
  int n = 0;
  for (int id : ids) {  // allowed: body has no += / -=
    if (id > 0) ++n;
  }
  return n;
}

float SumSortedCopy(const std::unordered_set<int>& rows) {
  std::vector<int> ordered(rows.begin(), rows.end());
  float total = 0.0f;
  for (int r : ordered) total += r;  // allowed: ordered container
  return total;
}

float SumPlainVector(const std::vector<float>& values) {
  float total = 0.0f;
  for (float v : values) total += v;  // allowed: vector
  return total;
}
