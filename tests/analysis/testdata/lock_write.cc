// Fixture: rule lock-unguarded-write, .cc half — the writes.
#include "lock_write.h"

namespace fixture {

Counter::Counter() {
  value_ = -1;  // constructor of the owning class: exempt
}

void Counter::Bump() {
  std::lock_guard<DebugMutex> lock(mu_);
  value_ += 1;                 // inside the lock scope: fine
  history_.push_back(value_);  // container mutator under the lock: fine
}

void Counter::BumpLocked() {
  ++value_;  // declared GROUPSA_REQUIRES(mu_): fine
}

void Counter::Misuse() {
  value_ = 42;  // no lock held: finding
  {
    std::shared_lock<DebugSharedMutex> rlock(mu_);
    history_.clear();  // a read lock never licenses a write: finding
  }
  std::unique_lock<DebugMutex> lock(mu_);
  value_--;  // fine again
}

// A free function's local that happens to share the member's name is not
// Counter state: bare names only bind inside the owning class's own code.
void Scratch() {
  int value_ = 7;
  value_ = 8;
  (void)value_;
}

}  // namespace fixture
