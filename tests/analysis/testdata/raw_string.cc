// Fixture: raw string literals. The embedded unescaped quotes and banned
// tokens must all be blanked by StripCommentsAndStrings — the escape-based
// string machine would resynchronize mid-literal and corrupt everything
// after — and the real banned calls below must still be reported.
#include <string>

const char* kQuery = R"sql(SELECT "rand" FROM t WHERE x = ")sql";
const char* kPattern = R"(no time() or rand() here, and a lone " quote)";

int Later() {
  return rand();  // banned-rand: found despite the raw strings above
}

const char* kPlain = "escaped \" quote";
int Tail() { return rand(); }
