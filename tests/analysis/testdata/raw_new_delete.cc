// Lint fixture (never compiled): raw-new-delete rule.
// Saying new or delete in a comment must not count.

struct Widget {
  Widget() = default;                       // allowed
  Widget(const Widget&) = delete;           // allowed: deleted function
  Widget& operator=(const Widget&) = delete;  // allowed
};

static const char* kNote = "never delete this";  // string must not count

int* MakeBuffer() { return new int[4]; }  // finding

void FreeBuffer(int* p) { delete[] p; }  // finding

Widget* MakeWidget() { return new Widget(); }  // finding

int new_cols = 0;     // allowed: identifier containing 'new'
int deleted_rows = 0;  // allowed: identifier containing 'delete'
