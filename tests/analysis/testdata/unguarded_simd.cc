// Lint fixture (never compiled): fp-contract rule. Uses intrinsics, so it
// must appear in the GROUPSA_SIMD_SOURCES guard list.
#include <immintrin.h>

void AddLanes(float* a, const float* b, int n) {
  for (int i = 0; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    _mm256_storeu_ps(a + i, _mm256_add_ps(va, vb));
  }
}
