// Fixture: rule lock-unguarded-write, header half — the contract the .cc
// is checked against (the linter indexes a .cc's same-basename header).
#include <vector>

namespace fixture {

class Counter {
 public:
  Counter();
  void Bump();
  void BumpLocked() GROUPSA_REQUIRES(mu_);
  void Misuse();

 private:
  DebugMutex mu_{"fixture.counter"};
  int value_ GROUPSA_GUARDED_BY(mu_) = 0;
  std::vector<int> history_ GROUPSA_GUARDED_BY(mu_);
};

}  // namespace fixture
