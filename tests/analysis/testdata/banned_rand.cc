// Lint fixture (never compiled): banned-rand rule.
#include <cstdlib>
#include <random>

int LibcDraw() { return rand(); }  // finding

void LibcSeed() { srand(42); }  // finding

unsigned HardwareDraw() {
  std::random_device device;  // finding
  return device();
}

double StreamDraw() {
  std::mt19937 generator(1);  // finding
  std::uniform_real_distribution<double> unit(0.0, 1.0);  // finding
  return unit(generator);
}
