// Lint fixture (never compiled): simd-confined rule. ISA-conditional code
// and intrinsics outside src/tensor/backends/ must be flagged.
#ifdef __AVX2__
#include <immintrin.h>
#endif

void AddLanes(float* a, const float* b, int n) {
#ifdef __AVX2__
  for (int i = 0; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    _mm256_storeu_ps(a + i, _mm256_add_ps(va, vb));
  }
  n &= 7;
#endif
  for (int i = 0; i < n; ++i) a[i] += b[i];
}
