// Lint fixture (never compiled): naked-thread rule.
#include <future>
#include <thread>

std::thread::id CurrentOwner();  // allowed: thread::id is just a value type

bool OnOwnerThread() {
  return std::this_thread::get_id() == CurrentOwner();  // allowed
}

void Work();

void SpawnRaw() {
  std::thread worker(Work);  // finding
  worker.join();
}

void SpawnAsync() {
  auto pending = std::async(Work);  // finding
  pending.wait();
}

void SpawnPosix(void* (*entry)(void*)) {
  pthread_t handle;
  pthread_create(&handle, nullptr, entry, nullptr);  // finding
}
