// Fixture: rule lock-order-cycle. Ring's GROUPSA_ACQUIRED_BEFORE edges
// close a cycle (a_ -> b_ -> c_ -> a_); Chain's form a DAG and must pass.
namespace fixture {

class Ring {
  DebugMutex a_ GROUPSA_ACQUIRED_BEFORE(b_){"fixture.a"};
  DebugMutex b_ GROUPSA_ACQUIRED_BEFORE(c_){"fixture.b"};
  DebugMutex c_ GROUPSA_ACQUIRED_BEFORE(a_){"fixture.c"};
};

class Chain {
  DebugMutex first_ GROUPSA_ACQUIRED_BEFORE(second_){"fixture.first"};
  DebugMutex second_ GROUPSA_ACQUIRED_BEFORE(third_){"fixture.second"};
  DebugMutex third_{"fixture.third"};
};

}  // namespace fixture
