#include "analysis/source_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace groupsa::analysis {
namespace {

// Fixture sources live next to this test; the build injects the absolute
// path so the test is independent of the ctest working directory.
std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(GROUPSA_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<LintFinding> LintFixture(const std::string& name,
                                     const std::string& path_as) {
  const std::string content = ReadFixture(name);
  std::set<std::string> names;
  CollectUnorderedNames(StripCommentsAndStrings(content), &names);
  return LintSource(path_as, content, names);
}

std::vector<int> LinesForRule(const std::vector<LintFinding>& findings,
                              const std::string& rule) {
  std::vector<int> lines;
  for (const LintFinding& f : findings)
    if (f.rule == rule) lines.push_back(f.line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(StripCommentsAndStringsTest, BlanksCommentAndLiteralContent) {
  const std::string stripped = StripCommentsAndStrings(
      "int x = 1; // rand()\n"
      "const char* s = \"time(\";\n"
      "/* new\n   delete */ int y = 2;\n");
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_EQ(stripped.find("new"), std::string::npos);
  EXPECT_EQ(stripped.find("delete"), std::string::npos);
  EXPECT_NE(stripped.find("int x = 1;"), std::string::npos);
  EXPECT_NE(stripped.find("int y = 2;"), std::string::npos);
  // Line structure is preserved for line numbering.
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 4);
}

TEST(SourceLintTest, BannedTimeFixtureYieldsExactFindings) {
  const std::vector<LintFinding> findings =
      LintFixture("banned_time.cc", "src/eval/banned_time.cc");
  EXPECT_EQ(LinesForRule(findings, "banned-time"),
            (std::vector<int>{8, 11, 15}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(SourceLintTest, BannedTimeAllowedInStopwatch) {
  const std::vector<LintFinding> findings =
      LintFixture("banned_time.cc", "src/common/stopwatch.h");
  EXPECT_TRUE(LinesForRule(findings, "banned-time").empty());
}

TEST(SourceLintTest, BannedRandFixtureYieldsExactFindings) {
  const std::vector<LintFinding> findings =
      LintFixture("banned_rand.cc", "src/data/banned_rand.cc");
  EXPECT_EQ(LinesForRule(findings, "banned-rand"),
            (std::vector<int>{5, 7, 10, 15, 16}));
  EXPECT_EQ(findings.size(), 5u);
}

TEST(SourceLintTest, NakedThreadFixtureYieldsExactFindings) {
  const std::vector<LintFinding> findings =
      LintFixture("naked_thread.cc", "src/core/naked_thread.cc");
  // std::thread::id and std::this_thread on lines 5 and 8 must not match.
  EXPECT_EQ(LinesForRule(findings, "naked-thread"),
            (std::vector<int>{14, 19, 25}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(SourceLintTest, NakedThreadAllowedInThreadPool) {
  const std::vector<LintFinding> findings =
      LintFixture("naked_thread.cc", "src/common/thread_pool.cc");
  EXPECT_TRUE(LinesForRule(findings, "naked-thread").empty());
}

TEST(SourceLintTest, RawNewDeleteFixtureYieldsExactFindings) {
  const std::vector<LintFinding> findings =
      LintFixture("raw_new_delete.cc", "src/nn/raw_new_delete.cc");
  // Deleted special members (lines 6-7) and new_/deleted_ identifiers
  // (lines 18-19) must not match.
  EXPECT_EQ(LinesForRule(findings, "raw-new-delete"),
            (std::vector<int>{12, 14, 16}));
  EXPECT_EQ(findings.size(), 3u);
}

TEST(SourceLintTest, UnorderedIterFixtureYieldsExactFindings) {
  const std::vector<LintFinding> findings =
      LintFixture("unordered_iter.cc", "src/autograd/unordered_iter.cc");
  // Line 11: bare identifier declared unordered in the same file.
  // Line 17: member access resolved through the collected name set.
  // The loops without accumulation and over ordered containers must pass.
  EXPECT_EQ(LinesForRule(findings, "unordered-iter"),
            (std::vector<int>{11, 17}));
  EXPECT_EQ(findings.size(), 2u);
}

TEST(SourceLintTest, MemberAccessUsesGlobalNameSet) {
  // The declaring header is a *different* file: the member's name reaches
  // the use site only through the global (cross-file) name set.
  const std::string user =
      "float Sum(const Slot& slot) {\n"
      "  float total = 0.0f;\n"
      "  for (int r : *slot.touched_rows) total += r;\n"
      "  return total;\n"
      "}\n";
  std::set<std::string> global;
  CollectUnorderedNames(
      StripCommentsAndStrings(
          "struct Slot { std::unordered_set<int>* touched_rows; };\n"),
      &global);
  EXPECT_EQ(global.count("touched_rows"), 1u);
  const std::vector<LintFinding> findings =
      LintSource("src/nn/user.cc", user, global);
  EXPECT_EQ(LinesForRule(findings, "unordered-iter"),
            (std::vector<int>{3}));

  // A bare (non-member) identifier must NOT match the global set: only
  // same-file declarations bind plain names.
  const std::string bare =
      "float Sum(const std::vector<int>& touched_rows) {\n"
      "  float total = 0.0f;\n"
      "  for (int r : touched_rows) total += r;\n"
      "  return total;\n"
      "}\n";
  EXPECT_TRUE(LintSource("src/nn/bare.cc", bare, global).empty());
}

TEST(SourceLintTest, CollectUnorderedNamesFindsDeclarations) {
  std::set<std::string> names;
  CollectUnorderedNames(
      "std::unordered_map<std::string, std::vector<int>> by_name;\n"
      "std::unordered_set<int>* touched = nullptr;\n"
      "void F(const std::unordered_set<const char*>& seen);\n",
      &names);
  EXPECT_EQ(names.count("by_name"), 1u);
  EXPECT_EQ(names.count("touched"), 1u);
  EXPECT_EQ(names.count("seen"), 1u);
}

// ---------------- fp-contract / simd-confined ----------------

// A well-formed kernel-dispatch CMakeLists fragment: the guard flags carry
// both no-contraction options and every backend TU receives them.
constexpr char kGuardedCMake[] =
    "set(GROUPSA_KERNEL_GUARD_FLAGS \"-mno-fma;-ffp-contract=off\")\n"
    "set(GROUPSA_KERNEL_BACKEND_SOURCES tensor/backends/backend_scalar.cc)\n"
    "set_source_files_properties(tensor/backends/backend_scalar.cc "
    "PROPERTIES\n"
    "  COMPILE_OPTIONS \"${GROUPSA_KERNEL_GUARD_FLAGS}\")\n"
    "set_source_files_properties(tensor/backends/backend_avx2.cc "
    "PROPERTIES\n"
    "  COMPILE_OPTIONS \"-mavx2;${GROUPSA_KERNEL_GUARD_FLAGS}\")\n";

TEST(SourceLintTest, GuardedKernelCMakeIsClean) {
  EXPECT_TRUE(
      LintSimdGuardList("src/CMakeLists.txt", kGuardedCMake, {}).empty());
}

TEST(SourceLintTest, SimdFileOutsideBackendsIsFlagged) {
  const std::string content = ReadFixture("simd_confine.cc");
  const std::vector<LintFinding> findings = LintSimdGuardList(
      "src/CMakeLists.txt", kGuardedCMake,
      {{"src/core/simd_confine.cc", content}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "simd-confined");
  EXPECT_EQ(findings[0].file, "src/core/simd_confine.cc");
  EXPECT_EQ(findings[0].line, 3);  // the first __AVX2__ test
  EXPECT_NE(findings[0].message.find("tensor/backends"), std::string::npos);
}

TEST(SourceLintTest, SimdFileInsideBackendsIsClean) {
  // The backends directory matches at a path-component boundary, wherever
  // the checkout lives; sibling names that merely share the prefix do not.
  const std::string content = ReadFixture("simd_confine.cc");
  EXPECT_TRUE(LintSimdGuardList(
                  "src/CMakeLists.txt", kGuardedCMake,
                  {{"src/tensor/backends/backend_avx2.cc", content},
                   {"/repo/src/tensor/backends/kernels_avx512.cc", content}})
                  .empty());
  const std::vector<LintFinding> findings = LintSimdGuardList(
      "src/CMakeLists.txt", kGuardedCMake,
      {{"src/tensor/backends_util.cc", content}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "simd-confined");
}

TEST(SourceLintTest, IntrinsicsFixtureIsAlsoConfined) {
  // The older intrinsics-only fixture (no ISA #ifdef) still trips the rule
  // via the immintrin.h include.
  const std::string content = ReadFixture("unguarded_simd.cc");
  const std::vector<LintFinding> findings = LintSimdGuardList(
      "src/CMakeLists.txt", kGuardedCMake,
      {{"src/math/unguarded_simd.cc", content}});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "simd-confined");
  EXPECT_EQ(findings[0].line, 3);  // the immintrin.h include
}

TEST(SourceLintTest, GuardFlagsWithoutFpContractOffAreFlagged) {
  const std::vector<LintFinding> findings = LintSimdGuardList(
      "src/CMakeLists.txt",
      "set(GROUPSA_KERNEL_GUARD_FLAGS \"-mno-fma\")\n"
      "set_source_files_properties(tensor/backends/backend_scalar.cc "
      "PROPERTIES\n"
      "  COMPILE_OPTIONS \"${GROUPSA_KERNEL_GUARD_FLAGS}\")\n",
      {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "fp-contract");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("-ffp-contract=off"),
            std::string::npos);
}

TEST(SourceLintTest, MissingGuardFlagsAreFlagged) {
  const std::vector<LintFinding> findings = LintSimdGuardList(
      "src/CMakeLists.txt", "add_library(x a.cc)\n", {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "fp-contract");
  EXPECT_NE(findings[0].message.find("guard list not found"),
            std::string::npos);
}

TEST(SourceLintTest, BackendTuWithoutGuardFlagsIsFlagged) {
  // backend_avx512.cc is named in the source list but never given the
  // guard flags through set_source_files_properties.
  const std::vector<LintFinding> findings = LintSimdGuardList(
      "src/CMakeLists.txt",
      "set(GROUPSA_KERNEL_GUARD_FLAGS \"-mno-fma;-ffp-contract=off\")\n"
      "set(GROUPSA_KERNEL_BACKEND_SOURCES\n"
      "    tensor/backends/backend_scalar.cc\n"
      "    tensor/backends/backend_avx512.cc)\n"
      "set_source_files_properties(tensor/backends/backend_scalar.cc "
      "PROPERTIES\n"
      "  COMPILE_OPTIONS \"${GROUPSA_KERNEL_GUARD_FLAGS}\")\n",
      {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "fp-contract");
  EXPECT_EQ(findings[0].line, 4);  // where backend_avx512.cc is named
  EXPECT_NE(findings[0].message.find("backend_avx512.cc"),
            std::string::npos);
}

TEST(SourceLintTest, RealKernelCMakeListsPassesTheGuardRule) {
  // Pin the rule to the actual build file: a refactor that drops the guard
  // flags from a backend TU must fail here before it reaches CI.
  const std::string path =
      std::string(GROUPSA_TESTDATA_DIR) + "/../../../src/CMakeLists.txt";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(
      LintSimdGuardList("src/CMakeLists.txt", buffer.str(), {}).empty());
}

// ---------------- allowlist ----------------

TEST(AllowlistTest, ParsesEntriesAndComments) {
  Allowlist allow;
  const Status status = Allowlist::Parse(
      "# header comment\n"
      "\n"
      "src/common/failpoint.cc raw-new-delete  # leaky singleton\n"
      "autograd/grad_shard.cc unordered-iter\n",
      &allow);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_EQ(allow.entries().size(), 2u);
  EXPECT_TRUE(allow.Allows("src/common/failpoint.cc", "raw-new-delete"));
  // Suffix matching: a deeper checkout prefix still matches.
  EXPECT_TRUE(
      allow.Allows("/repo/src/autograd/grad_shard.cc", "unordered-iter"));
  // Same path, different rule: no.
  EXPECT_FALSE(allow.Allows("src/common/failpoint.cc", "banned-rand"));
  // Suffix must start at a path component boundary.
  EXPECT_FALSE(allow.Allows("src/common/not_failpoint.cc.x", "raw-new-delete"));
}

TEST(AllowlistTest, DirectoryEntriesMatchEveryFileUnderneath) {
  Allowlist allow;
  const Status status =
      Allowlist::Parse("tensor/backends/ simd-confined\n", &allow);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_TRUE(
      allow.Allows("src/tensor/backends/backend_avx2.cc", "simd-confined"));
  EXPECT_TRUE(allow.Allows("/repo/src/tensor/backends/deep/kern.h",
                           "simd-confined"));
  // The directory sequence must sit at a component boundary and must have
  // something after it.
  EXPECT_FALSE(allow.Allows("src/tensor/backends_util.cc", "simd-confined"));
  EXPECT_FALSE(allow.Allows("src/xtensor/backends/k.cc", "simd-confined"));
  EXPECT_FALSE(allow.Allows("src/tensor/backends/", "simd-confined"));
}

TEST(AllowlistTest, RejectsMalformedLine) {
  Allowlist allow;
  const Status status =
      Allowlist::Parse("just-a-path-without-a-rule\n", &allow);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("allowlist line 1"), std::string::npos);
}

TEST(AllowlistTest, ApplyDropsAllowedAndFlagsStaleEntries) {
  Allowlist allow;
  ASSERT_TRUE(Allowlist::Parse("src/a.cc banned-rand\n"
                               "src/gone.cc banned-time\n",
                               &allow)
                  .ok());
  std::vector<LintFinding> findings = {
      {"src/a.cc", 3, "banned-rand", "ad-hoc randomness"},
      {"src/b.cc", 7, "banned-rand", "ad-hoc randomness"},
  };
  const std::vector<LintFinding> kept =
      ApplyAllowlist(std::move(findings), allow, "tools/lint_allow.txt");
  // a.cc dropped; b.cc kept; the unmatched gone.cc entry surfaces as stale.
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].file, "src/b.cc");
  EXPECT_EQ(kept[0].rule, "banned-rand");
  EXPECT_EQ(kept[1].file, "tools/lint_allow.txt");
  EXPECT_EQ(kept[1].rule, "stale-allowlist");
  EXPECT_EQ(kept[1].line, 2);
  EXPECT_NE(kept[1].message.find("src/gone.cc banned-time"),
            std::string::npos);
}

TEST(AllowlistTest, PruneDropsStaleEntriesAndKeepsComments) {
  const std::string content =
      "# header comment\n"
      "\n"
      "src/a.cc banned-rand  # live\n"
      "src/gone.cc banned-time\n"
      "src/b.cc raw-new-delete\n";
  Allowlist allow;
  ASSERT_TRUE(Allowlist::Parse(content, &allow).ok());
  // Pre-allowlist findings: a.cc and b.cc entries are live, gone.cc is not.
  const std::vector<LintFinding> findings = {
      {"src/a.cc", 3, "banned-rand", "ad-hoc randomness"},
      {"src/b.cc", 9, "raw-new-delete", "raw new/delete"},
  };
  EXPECT_EQ(PruneAllowlist(content, allow, findings),
            "# header comment\n"
            "\n"
            "src/a.cc banned-rand  # live\n"
            "src/b.cc raw-new-delete\n");
  // Nothing stale: the rewrite is the identity.
  const std::string pruned = PruneAllowlist(content, allow, findings);
  Allowlist repruned;
  ASSERT_TRUE(Allowlist::Parse(pruned, &repruned).ok());
  EXPECT_EQ(PruneAllowlist(pruned, repruned, findings), pruned);
  // No findings at all: every entry goes.
  EXPECT_EQ(PruneAllowlist(content, allow, {}),
            "# header comment\n"
            "\n");
}

// ---------------- raw string literals ----------------

TEST(StripCommentsAndStringsTest, RawStringLiteralsAreBlanked) {
  const std::string stripped = StripCommentsAndStrings(
      "auto a = R\"(unbalanced \" quote and rand())\";\n"
      "auto b = R\"x(time() and a ) paren)x\";\n"
      "auto c = u8R\"(more \" quotes)\";\n"
      "int d = rand();\n");
  // Literal contents — including the unescaped quotes that would desync the
  // escape-based string machine — are gone; the code after them is intact.
  EXPECT_EQ(stripped.find("quote"), std::string::npos);
  EXPECT_EQ(stripped.find("time"), std::string::npos);
  EXPECT_EQ(stripped.find("paren"), std::string::npos);
  EXPECT_NE(stripped.find("int d = rand();"), std::string::npos);
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 4);
}

TEST(StripCommentsAndStringsTest, IdentifierEndingInRIsNotARawPrefix) {
  // `myR"x"` cannot be a raw literal (R glued to an identifier): the quote
  // must open an ordinary string.
  const std::string stripped =
      StripCommentsAndStrings("auto s = myR\"abc\";\n");
  EXPECT_NE(stripped.find("myR"), std::string::npos);
  EXPECT_EQ(stripped.find("abc"), std::string::npos);
}

TEST(SourceLintTest, RawStringFixtureYieldsExactFindings) {
  const std::vector<LintFinding> findings =
      LintFixture("raw_string.cc", "src/data/raw_string.cc");
  // Only the two real rand() calls; the rand/time tokens inside the raw
  // strings and the escaped-quote ordinary string must not leak out.
  EXPECT_EQ(LinesForRule(findings, "banned-rand"),
            (std::vector<int>{11, 15}));
  EXPECT_EQ(findings.size(), 2u);
}

// ---------------- naked-mutex ----------------

TEST(SourceLintTest, NakedMutexFixtureYieldsExactFindings) {
  const std::vector<LintFinding> findings =
      LintFixture("naked_mutex.cc", "src/serve/naked_mutex.cc");
  // The four raw primitives; the Debug* wrappers and the lock_guard
  // adapter over one must not match.
  EXPECT_EQ(LinesForRule(findings, "naked-mutex"),
            (std::vector<int>{8, 9, 10, 11}));
  EXPECT_EQ(findings.size(), 4u);
}

TEST(SourceLintTest, NakedMutexAllowedInDebugMutex) {
  const std::vector<LintFinding> h =
      LintFixture("naked_mutex.cc", "src/common/debug_mutex.h");
  EXPECT_TRUE(LinesForRule(h, "naked-mutex").empty());
  const std::vector<LintFinding> cc =
      LintFixture("naked_mutex.cc", "src/common/debug_mutex.cc");
  EXPECT_TRUE(LinesForRule(cc, "naked-mutex").empty());
}

}  // namespace
}  // namespace groupsa::analysis
