#include "analysis/graph_lint.h"

#include <gtest/gtest.h>

#include <memory>
#include <unordered_set>
#include <vector>

#include "autograd/ops.h"
#include "autograd/tape.h"
#include "core/test_fixtures.h"
#include "core/trainer.h"

// Substring assertion over diagnostic messages (gmock matchers are not
// linked in this suite).
#define EXPECT_HAS(haystack, needle)                                  \
  EXPECT_NE(std::string(haystack).find(needle), std::string::npos)    \
      << "expected substring \"" << (needle) << "\" in:\n" << (haystack)

namespace groupsa::analysis {
namespace {

using core::testing::TinyFixture;

ag::TensorPtr Val(int rows, int cols) {
  return ag::Constant(tensor::Matrix(rows, cols));
}

ag::TensorPtr Var(int rows, int cols) {
  return ag::Variable(tensor::Matrix(rows, cols));
}

ag::OpNode Node(ag::OpKind kind, std::vector<ag::TensorPtr> inputs,
                ag::TensorPtr output, int arg0 = 0, int arg1 = 0,
                bool flag0 = false, bool flag1 = false) {
  ag::OpNode node;
  node.kind = kind;
  node.inputs = std::move(inputs);
  node.output = std::move(output);
  node.arg0 = arg0;
  node.arg1 = arg1;
  node.flag0 = flag0;
  node.flag1 = flag1;
  return node;
}

// Shape-only validation of hand-built (malformed) nodes: no root, so the
// reachability checks stay out of the way.
std::string ShapeDiagnostic(ag::OpNode node) {
  ag::Tape tape;
  tape.set_record_graph(true);
  tape.RecordNode(std::move(node));
  const Status status = ValidateTape(tape, TapeLintOptions());
  EXPECT_FALSE(status.ok());
  return status.message();
}

// --- Malformed fixture 1: MatMul inner dimensions -------------------------

TEST(GraphLintTest, RejectsMatMulInnerDimensionMismatch) {
  const std::string msg = ShapeDiagnostic(
      Node(ag::OpKind::kMatMul, {Val(2, 3), Val(4, 5)}, Val(2, 5)));
  EXPECT_HAS(msg, ("[shape-mismatch]"));
  EXPECT_HAS(msg, ("op#0 MatMul"));
  EXPECT_HAS(msg,
              ("inner dimensions differ: op(a)=2x3 vs op(b)=4x5"));
}

// --- Malformed fixture 2: MatMul output under transpose -------------------

TEST(GraphLintTest, RejectsMatMulWrongOutputUnderTranspose) {
  // a^T (3x2 -> 2x3) times b (3x4) is 2x4; the recorded output lies.
  const std::string msg = ShapeDiagnostic(Node(ag::OpKind::kMatMul,
                                               {Val(3, 2), Val(3, 4)},
                                               Val(3, 4), 0, 0,
                                               /*flag0=*/true));
  EXPECT_HAS(msg, ("expected output 2x4, got 3x4"));
}

// --- Malformed fixture 3: elementwise shape mismatch ----------------------

TEST(GraphLintTest, RejectsElementwiseOperandMismatch) {
  const std::string msg = ShapeDiagnostic(
      Node(ag::OpKind::kAdd, {Val(2, 2), Val(2, 3)}, Val(2, 2)));
  EXPECT_HAS(msg, ("op#0 Add"));
  EXPECT_HAS(msg, ("elementwise operands differ: 2x2 vs 2x3"));
}

// --- Malformed fixture 4: bias that cannot broadcast ----------------------

TEST(GraphLintTest, RejectsNonBroadcastableBias) {
  const std::string msg = ShapeDiagnostic(
      Node(ag::OpKind::kAddBias, {Val(2, 4), Val(2, 4)}, Val(2, 4)));
  EXPECT_HAS(msg,
              ("bias must be 1x4 to broadcast over 2x4 rows, got "
                        "2x4"));
}

// --- Malformed fixture 5: broadcasting a non-row --------------------------

TEST(GraphLintTest, RejectsBroadcastOfNonRow) {
  const std::string msg = ShapeDiagnostic(
      Node(ag::OpKind::kBroadcastRow, {Val(2, 3)}, Val(4, 3), /*arg0=*/4));
  EXPECT_HAS(msg, ("input must be a single row, got 2x3"));
}

// --- Malformed fixture 6: slice out of bounds -----------------------------

TEST(GraphLintTest, RejectsOutOfBoundsSlice) {
  const std::string msg =
      ShapeDiagnostic(Node(ag::OpKind::kSliceRows, {Val(3, 2)}, Val(5, 2),
                           /*arg0=*/2, /*arg1=*/5));
  EXPECT_HAS(msg, ("[bad-operand]"));
  EXPECT_HAS(msg, ("slice [2, 7) out of bounds for 3 rows"));
}

// --- Malformed fixture 7: gathered id beyond the table --------------------

TEST(GraphLintTest, RejectsGatherIdBeyondTable) {
  const std::string msg =
      ShapeDiagnostic(Node(ag::OpKind::kGatherRows, {Val(4, 2)}, Val(1, 2),
                           /*arg0=*/1, /*arg1=*/7));
  EXPECT_HAS(msg, ("gathered id 7 out of range for a 4-row table"));
}

// --- Malformed fixture 8: ragged concatenation ----------------------------

TEST(GraphLintTest, RejectsRaggedConcatRows) {
  const std::string msg = ShapeDiagnostic(
      Node(ag::OpKind::kConcatRows, {Val(1, 3), Val(1, 4)}, Val(2, 3)));
  EXPECT_HAS(msg,
              ("part 1 is 1x4 but part 0 is 1x3 (column counts "
                        "must match)"));
}

// --- Malformed fixture 9: LayerNorm gain of the wrong width ---------------

TEST(GraphLintTest, RejectsLayerNormGainWidth) {
  const std::string msg = ShapeDiagnostic(Node(
      ag::OpKind::kLayerNorm, {Val(2, 4), Val(1, 3), Val(1, 4)}, Val(2, 4)));
  EXPECT_HAS(msg, ("gain must be 1x4, got 1x3"));
}

// --- Malformed fixture 10: BPR negatives not a column ---------------------

TEST(GraphLintTest, RejectsBprNegativesNotColumn) {
  const std::string msg = ShapeDiagnostic(
      Node(ag::OpKind::kBprLoss, {Val(1, 1), Val(3, 2)}, Val(1, 1)));
  EXPECT_HAS(msg, ("negs must be a column (n x 1), got 3x2"));
}

// --- Malformed fixture 11: null operand -----------------------------------

TEST(GraphLintTest, RejectsNullInput) {
  const std::string msg = ShapeDiagnostic(
      Node(ag::OpKind::kAdd, {Val(1, 1), nullptr}, Val(1, 1)));
  EXPECT_HAS(msg, ("[bad-operand]"));
  EXPECT_HAS(msg, ("input 1 is null"));
}

// --- Malformed fixture 12: two ops writing one tensor ---------------------

TEST(GraphLintTest, RejectsDoubleWrite) {
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr shared = Val(2, 2);
  tape.RecordNode(Node(ag::OpKind::kRelu, {Val(2, 2)}, shared));
  tape.RecordNode(Node(ag::OpKind::kTanh, {Val(2, 2)}, shared));
  const Status status = ValidateTape(tape, TapeLintOptions());
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(), ("[double-write]"));
  EXPECT_HAS(status.message(),
              ("op#1 Tanh: output tensor already written by op#0 "
                        "Relu"));
}

// --- Malformed fixture 13: op overwriting a parameter ---------------------

TEST(GraphLintTest, RejectsParameterOverwrite) {
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr param = Var(2, 2);
  param->set_name("embedding");
  tape.RecordNode(Node(ag::OpKind::kRelu, {Val(2, 2)}, param));
  TapeLintOptions options;
  options.parameters = {param.get()};
  const Status status = ValidateTape(tape, options);
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(), ("[param-overwrite]"));
  EXPECT_HAS(status.message(),
              ("writes a registered parameter"));
  EXPECT_HAS(status.message(), ("'embedding'"));
}

// --- Malformed fixture 14: gradient-requesting op detached from the root --

TEST(GraphLintTest, RejectsDetachedGradSubgraph) {
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr root = Val(1, 1);
  tape.RecordNode(Node(ag::OpKind::kSumAll, {Var(2, 2)}, root));
  // Forgotten branch: wants gradients, feeds nothing.
  tape.RecordNode(Node(ag::OpKind::kSigmoid, {Var(1, 1)}, Var(1, 1)));
  TapeLintOptions options;
  options.root = root;
  const Status status = ValidateTape(tape, options);
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(), ("[detached-grad]"));
  EXPECT_HAS(status.message(),
              ("op#1 Sigmoid: requests gradients but is not "
                        "reachable from the backward root"));
}

// --- Malformed fixture 15: gradient-free dead compute ---------------------

TEST(GraphLintTest, RejectsDanglingNode) {
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr root = Val(1, 1);
  tape.RecordNode(Node(ag::OpKind::kSumAll, {Var(2, 2)}, root));
  tape.RecordNode(Node(ag::OpKind::kRelu, {Val(1, 1)}, Val(1, 1)));
  TapeLintOptions options;
  options.root = root;
  const Status status = ValidateTape(tape, options);
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(), ("[dangling-node]"));
  EXPECT_HAS(status.message(), ("dead compute"));

  // The same graph passes when dead compute is explicitly permitted.
  options.allow_dangling = true;
  EXPECT_TRUE(ValidateTape(tape, options).ok());
}

// --- Malformed fixture 16: root produced by no op -------------------------

TEST(GraphLintTest, RejectsMissingRoot) {
  ag::Tape tape;
  tape.set_record_graph(true);
  tape.RecordNode(Node(ag::OpKind::kRelu, {Var(1, 1)}, Var(1, 1)));
  TapeLintOptions options;
  options.root = Val(1, 1);  // never written on this tape
  const Status status = ValidateTape(tape, options);
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(), ("[missing-root]"));
  EXPECT_HAS(status.message(),
              ("root tensor is not produced by any op on this "
                        "tape"));
}

// --- Malformed fixture 17: parameter the backward pass never reaches ------

TEST(GraphLintTest, RejectsUnreachedParameter) {
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr used = Var(2, 2);
  ag::TensorPtr unused = Var(3, 4);
  unused->set_name("voting/w1");
  ag::TensorPtr root = Val(1, 1);
  tape.RecordNode(Node(ag::OpKind::kSumAll, {used}, root));
  TapeLintOptions options;
  options.root = root;
  options.parameters = {used.get(), unused.get()};
  options.check_unreached_params = true;
  const Status status = ValidateTape(tape, options);
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(), ("[unreached-param]"));
  EXPECT_HAS(status.message(),
              ("parameter 'voting/w1' (3x4) is read by no op "
                        "reachable from the backward root"));

  // Off by default: the same tape with the flag unset is clean.
  options.check_unreached_params = false;
  EXPECT_TRUE(ValidateTape(tape, options).ok());
}

// --- Structure-less tapes cannot be validated -----------------------------

TEST(GraphLintTest, FlagsTapeBuiltWithoutGraphRecording) {
  ag::Tape tape;
  tape.set_record_graph(false);
  ag::TensorPtr x = Var(1, 1);
  ag::TensorPtr y = ag::Relu(&tape, x);
  (void)y;
  ASSERT_GT(tape.num_ops(), 0u);
  ASSERT_TRUE(tape.nodes().empty());
  const Status status = ValidateTape(tape, TapeLintOptions());
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(),
              ("no recorded graph structure"));
}

// --- Well-formed graphs pass ----------------------------------------------

TEST(GraphLintTest, AcceptsHandBuiltCleanGraph) {
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr a = Var(2, 3);
  ag::TensorPtr b = Var(3, 4);
  ag::TensorPtr prod = ag::MatMul(&tape, a, b);
  ag::TensorPtr act = ag::Relu(&tape, prod);
  ag::TensorPtr loss = ag::SumAll(&tape, act);
  TapeLintOptions options;
  options.root = loss;
  options.parameters = {a.get(), b.get()};
  options.check_unreached_params = true;
  const Status status = ValidateTape(tape, options);
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(tape.nodes().size(), 3u);
}

TEST(GraphLintTest, RealOpsRecordValidatableStructure) {
  // Every recorded op of a mixed real graph passes the independent shape
  // table, including gradient-free ops (Constant inputs).
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr table = Var(5, 4);
  ag::TensorPtr rows = ag::GatherRows(&tape, table, {1, 3, 4}, nullptr);
  ag::TensorPtr normed = ag::SoftmaxRows(&tape, rows);
  ag::TensorPtr pooled = ag::MatMul(&tape, normed, ag::Constant(
                                        tensor::Matrix(4, 1)));
  ag::TensorPtr loss = ag::SumAll(&tape, pooled);
  TapeLintOptions options;
  options.root = loss;
  const Status status = ValidateTape(tape, options);
  EXPECT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(tape.nodes().size(), 4u);
}

// --- Stale gradients on recycled tensors ----------------------------------

TEST(GraphLintTest, RejectsOutputWithStaleGradient) {
  // A pooled tensor handed out without zeroing its previous batch's
  // gradient: backward would silently accumulate on top of it.
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr x = Var(2, 2);
  ag::TensorPtr out = Var(2, 2);
  out->grad().At(1, 1) = 0.5f;  // leftover from a "previous batch"
  tape.RecordNode(Node(ag::OpKind::kRelu, {x}, out));
  const Status status = ValidateTape(tape, TapeLintOptions());
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(), ("[stale-grad]"));
  EXPECT_HAS(status.message(),
             ("output carries a nonzero gradient before backward ran"));
}

TEST(GraphLintTest, AcceptsOutputWithZeroedGradient) {
  // The pool's contract: a recycled tensor re-enters the graph with its
  // gradient zeroed, indistinguishable from a fresh one.
  ag::Tape tape;
  tape.set_record_graph(true);
  ag::TensorPtr x = Var(2, 2);
  ag::TensorPtr out = Var(2, 2);
  out->grad().SetZero();
  tape.RecordNode(Node(ag::OpKind::kRelu, {x}, out));
  const Status status = ValidateTape(tape, TapeLintOptions());
  EXPECT_TRUE(status.ok()) << status.message();
}

// --- Shard-slot registration ----------------------------------------------

TEST(GraphLintTest, ShardSlotsRejectDuplicateTensor) {
  ag::TensorPtr param = Var(2, 2);
  param->set_name("item_emb/table");
  const Status status = ValidateShardSlots(
      {{param.get(), nullptr}, {param.get(), nullptr}});
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(),
              ("tensor 'item_emb/table' registered in shard slots "
                        "0 and 1"));
  EXPECT_HAS(status.message(), ("reduced twice"));
}

TEST(GraphLintTest, ShardSlotsRejectSharedTouchedRows) {
  ag::TensorPtr a = Var(2, 2);
  ag::TensorPtr b = Var(2, 2);
  std::unordered_set<int> rows;
  const Status status = ValidateShardSlots({{a.get(), &rows}, {b.get(), &rows}});
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(),
              ("touched-row set shared by shard slots 0 and 1"));
}

TEST(GraphLintTest, ShardSlotsRejectNullTensor) {
  const Status status = ValidateShardSlots({{nullptr, nullptr}});
  ASSERT_FALSE(status.ok());
  EXPECT_HAS(status.message(), ("shard slot 0 has no tensor"));
}

// --- The real GroupSA training graph validates clean ----------------------

core::GroupSaConfig SmallConfig(int threads) {
  core::GroupSaConfig c = core::GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  c.user_epochs = 1;
  c.group_epochs = 1;
  c.threads = threads;
  return c;
}

TEST(GraphLintTest, GroupSaTrainingGraphValidatesAtOneAndFourThreads) {
  for (int threads : {1, 4}) {
    const core::GroupSaConfig config = SmallConfig(threads);
    const TinyFixture f = TinyFixture::Make(config);
    auto model = f.MakeModel(config);
    const Status status = model->ValidateGraph();
    EXPECT_TRUE(status.ok())
        << "threads=" << threads << ": " << status.message();
  }
}

TEST(GraphLintTest, ValidateGraphLeavesTouchedRowsIntact) {
  const core::GroupSaConfig config = SmallConfig(1);
  const TinyFixture f = TinyFixture::Make(config);
  auto model = f.MakeModel(config);
  ASSERT_TRUE(model->ValidateGraph().ok());
  for (const nn::ParamEntry& p : model->Parameters()) {
    if (p.touched_rows != nullptr) {
      EXPECT_TRUE(p.touched_rows->empty()) << p.name;
    }
  }
}

// Shard tapes built on pool threads validate inside the trainer's debug
// hook: force structure recording on (as debug builds have it) and run a
// real sharded fit at both pool widths. The trainer aborts the process on a
// validation failure, so completing the fit is the assertion.
TEST(GraphLintTest, TrainerValidatesRecordedShardTapes) {
  const bool saved = ag::Tape::GraphRecordingDefault();
  ag::Tape::SetGraphRecordingDefault(true);
  for (int threads : {1, 4}) {
    const core::GroupSaConfig config = SmallConfig(threads);
    const TinyFixture f = TinyFixture::Make(config);
    auto model = f.MakeModel(config);
    Rng rng(7);
    core::Trainer trainer(model.get(), f.ui.train, f.gi.train, &f.ui_train,
                          &f.gi_train, &rng);
    const core::Trainer::FitReport report = trainer.Fit(false);
    EXPECT_GE(report.user_epochs.size(), 1u);
    EXPECT_GE(report.group_epochs.size(), 1u);
  }
  ag::Tape::SetGraphRecordingDefault(saved);
}

}  // namespace
}  // namespace groupsa::analysis
