#include "analysis/lock_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace groupsa::analysis {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(GROUPSA_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<int> LinesForRule(const std::vector<LintFinding>& findings,
                              const std::string& rule) {
  std::vector<int> lines;
  for (const LintFinding& f : findings)
    if (f.rule == rule) lines.push_back(f.line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(LockLintTest, UnannotatedMembersOfMutexOwnerAreFlagged) {
  const std::vector<LintFinding> findings = LintLocks(
      {{"src/serve/lock_unannotated.h", ReadFixture("lock_unannotated.h")}});
  // label_ and weight_ carry no contract; the guarded, NOT_GUARDED, atomic,
  // const and cond-var members are exempt, as is the mutex-free Plain.
  EXPECT_EQ(LinesForRule(findings, "lock-unannotated"),
            (std::vector<int>{16, 17}));
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_NE(findings[0].message.find("label_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Guarded"), std::string::npos);
}

TEST(LockLintTest, DebugMutexAndMacroHeadersAreExempt) {
  // The same content under the annotation-vocabulary paths lints clean:
  // those files are the sanctioned home of the bare primitives.
  const std::string content = ReadFixture("lock_unannotated.h");
  EXPECT_TRUE(LintLocks({{"src/common/debug_mutex.h", content}}).empty());
  EXPECT_TRUE(LintLocks({{"src/common/debug_mutex.cc", content}}).empty());
  EXPECT_TRUE(LintLocks({{"src/common/macros.h", content}}).empty());
}

TEST(LockLintTest, GuardedWritesOutsideLockScopeAreFlagged) {
  // The .cc's contract comes from its same-basename header, so both files
  // go in together, exactly as tools/groupsa_lint feeds the whole tree.
  const std::vector<LintFinding> findings =
      LintLocks({{"src/serve/lock_write.h", ReadFixture("lock_write.h")},
                 {"src/serve/lock_write.cc", ReadFixture("lock_write.cc")}});
  // Line 21: plain write with no lock held. Line 24: container mutation
  // under only a shared_lock. The ctor write, the lock_guard scope, the
  // GROUPSA_REQUIRES method, the unique_lock decrement and the free
  // function's same-named local must all pass.
  EXPECT_EQ(LinesForRule(findings, "lock-unguarded-write"),
            (std::vector<int>{21, 24}));
  EXPECT_EQ(findings.size(), 2u);
  for (const LintFinding& f : findings)
    EXPECT_EQ(f.file, "src/serve/lock_write.cc");
}

TEST(LockLintTest, AcquiredBeforeCycleIsFlaggedOnce) {
  const std::vector<LintFinding> findings = LintLocks(
      {{"src/serve/lock_order_cycle.h", ReadFixture("lock_order_cycle.h")}});
  // Ring's three edges close one cycle — reported once, at the edge that
  // closes it — while Chain's DAG passes.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order-cycle");
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_NE(findings[0].message.find("Ring::"), std::string::npos);
}

TEST(LockLintTest, FindingsFlowThroughTheSharedAllowlist) {
  std::vector<LintFinding> findings = LintLocks(
      {{"src/serve/lock_unannotated.h", ReadFixture("lock_unannotated.h")}});
  ASSERT_EQ(findings.size(), 2u);

  // Hit: an entry for the file + rule silences both findings.
  Allowlist allow;
  ASSERT_TRUE(Allowlist::Parse(
                  "src/serve/lock_unannotated.h lock-unannotated\n", &allow)
                  .ok());
  EXPECT_TRUE(
      ApplyAllowlist(findings, allow, "tools/lint_allow.txt").empty());

  // Miss: a different rule leaves the findings AND goes stale itself.
  Allowlist wrong;
  ASSERT_TRUE(Allowlist::Parse(
                  "src/serve/lock_unannotated.h lock-order-cycle\n", &wrong)
                  .ok());
  const std::vector<LintFinding> kept =
      ApplyAllowlist(findings, wrong, "tools/lint_allow.txt");
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(LinesForRule(kept, "lock-unannotated"),
            (std::vector<int>{16, 17}));
  EXPECT_EQ(LinesForRule(kept, "stale-allowlist"), (std::vector<int>{1}));
  EXPECT_EQ(kept[2].file, "tools/lint_allow.txt");
}

}  // namespace
}  // namespace groupsa::analysis
