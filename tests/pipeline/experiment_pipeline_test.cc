#include "pipeline/experiment.h"

#include <gtest/gtest.h>

namespace groupsa::pipeline {
namespace {

RunOptions SmallOptions() {
  RunOptions options;
  options.num_candidates = 30;
  options.user_epochs = 1;
  options.group_epochs = 1;
  options.baseline_epochs = 1;
  options.seed = 5;
  return options;
}

TEST(PipelineTest, PrepareDataShapesAreConsistent) {
  const RunOptions options = SmallOptions();
  const ExperimentData data =
      PrepareData(data::SyntheticWorldConfig::Tiny(), options);
  EXPECT_EQ(data.num_users(), data.world.dataset.num_users);
  EXPECT_EQ(data.ui_train.num_rows(), data.num_users());
  EXPECT_EQ(data.gi_train.num_rows(), data.num_groups());
  // Split partitions are exhaustive.
  EXPECT_EQ(data.ui.train.size() + data.ui.validation.size() +
                data.ui.test.size(),
            data.world.dataset.user_item.size());
  EXPECT_EQ(data.gi.train.size() + data.gi.validation.size() +
                data.gi.test.size(),
            data.world.dataset.group_item.size());
  // Every ranking case carries the requested candidate count.
  for (const auto& c : data.user_cases)
    EXPECT_EQ(c.candidates.size(), 30u);
}

TEST(PipelineTest, PrepareDataDeterministicPerSeed) {
  const RunOptions options = SmallOptions();
  const ExperimentData a =
      PrepareData(data::SyntheticWorldConfig::Tiny(), options);
  const ExperimentData b =
      PrepareData(data::SyntheticWorldConfig::Tiny(), options);
  ASSERT_EQ(a.user_cases.size(), b.user_cases.size());
  for (size_t i = 0; i < a.user_cases.size(); ++i) {
    EXPECT_EQ(a.user_cases[i].positive, b.user_cases[i].positive);
    EXPECT_EQ(a.user_cases[i].candidates, b.user_cases[i].candidates);
  }
}

TEST(PipelineTest, QuickShrinksEpochsOnly) {
  RunOptions options;
  options.num_candidates = 77;
  const RunOptions quick = options.Quick();
  EXPECT_EQ(quick.num_candidates, 77);
  EXPECT_LT(quick.user_epochs, options.user_epochs);
  EXPECT_LT(quick.baseline_epochs, options.baseline_epochs);
}

TEST(PipelineTest, ParseBenchArgsFlags) {
  const char* argv[] = {"bench", "--quick", "--seed=42",
                        "--candidates=55", "--epochs=3"};
  const RunOptions options =
      ParseBenchArgs(5, const_cast<char**>(argv), RunOptions{});
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.num_candidates, 55);
  EXPECT_EQ(options.user_epochs, 3);
  EXPECT_EQ(options.group_epochs, 3);
}

TEST(PipelineTest, ParseBenchArgsDefaultsUntouched) {
  const char* argv[] = {"bench"};
  RunOptions defaults;
  defaults.seed = 9;
  const RunOptions options =
      ParseBenchArgs(1, const_cast<char**>(argv), defaults);
  EXPECT_EQ(options.seed, 9u);
}

TEST(PipelineTest, PopularityRunProducesBothTasks) {
  const RunOptions options = SmallOptions();
  const ExperimentData data =
      PrepareData(data::SyntheticWorldConfig::Tiny(), options);
  const ModelScores scores = RunPopularity(data, options);
  EXPECT_EQ(scores.name, "Pop");
  EXPECT_GT(scores.user.num_cases, 0);
  EXPECT_GT(scores.group.num_cases, 0);
  // Popularity on 30 candidates must beat uniform-random's ~5/31 HR@5.
  EXPECT_GT(scores.group.HitRatio(10), 0.2);
}

TEST(PipelineTest, StaticAggConsistentWithModelScores) {
  const RunOptions options = SmallOptions();
  const ExperimentData data =
      PrepareData(data::SyntheticWorldConfig::Tiny(), options);
  Rng rng(3);
  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  const core::ModelData md = BuildModelData(data, config);
  auto model = TrainGroupSa(config, data, options, &rng, md);
  const ModelScores avg = RunStaticAgg(
      model.get(), data, options, baselines::ScoreAggregation::kAverage);
  EXPECT_EQ(avg.name, "Group+avg");
  EXPECT_EQ(avg.group.num_cases,
            static_cast<int>(data.group_cases.size()));
  EXPECT_EQ(avg.user.num_cases, 0);  // statics are group-only
}

}  // namespace
}  // namespace groupsa::pipeline
