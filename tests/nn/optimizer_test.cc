#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "nn/embedding.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

// Minimizes f(w) = sum((w - target)^2) and checks convergence.
template <typename Opt>
float MinimizeQuadratic(Opt* optimizer, const ag::TensorPtr& w,
                        const Matrix& target, int steps) {
  for (int i = 0; i < steps; ++i) {
    ag::Tape tape;
    ag::TensorPtr diff = ag::Sub(&tape, w, ag::Constant(target));
    ag::TensorPtr loss = ag::SumAll(&tape, ag::Mul(&tape, diff, diff));
    tape.Backward(loss);
    optimizer->Step();
  }
  Matrix diff = w->value();
  diff.SubInPlace(target);
  return diff.MaxAbs();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  ag::TensorPtr w = ag::Variable(Matrix(1, 4, 0.0f));
  Matrix target = Matrix::FromRows({{1, -2, 3, 0.5}});
  Sgd sgd({ParamEntry{"w", w, nullptr}}, /*learning_rate=*/0.1f);
  EXPECT_LT(MinimizeQuadratic(&sgd, w, target, 200), 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  ag::TensorPtr w = ag::Variable(Matrix(1, 4, 0.0f));
  Matrix target = Matrix::FromRows({{1, -2, 3, 0.5}});
  Sgd sgd({ParamEntry{"w", w, nullptr}}, 0.05f, 0.0f, /*momentum=*/0.9f);
  EXPECT_LT(MinimizeQuadratic(&sgd, w, target, 200), 1e-2f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  ag::TensorPtr w = ag::Variable(Matrix(1, 4, 0.0f));
  Matrix target = Matrix::FromRows({{1, -2, 3, 0.5}});
  Adam adam({ParamEntry{"w", w, nullptr}}, /*learning_rate=*/0.1f);
  EXPECT_LT(MinimizeQuadratic(&adam, w, target, 400), 1e-2f);
}

TEST(OptimizerTest, StepZeroesConsumedGradients) {
  ag::TensorPtr w = ag::Variable(Matrix(1, 2, 1.0f));
  w->grad().Fill(1.0f);
  Sgd sgd({ParamEntry{"w", w, nullptr}}, 0.1f);
  sgd.Step();
  EXPECT_FLOAT_EQ(w->grad().At(0, 0), 0.0f);
}

TEST(OptimizerTest, WeightDecayShrinksParams) {
  ag::TensorPtr w = ag::Variable(Matrix(1, 1, 1.0f));
  w->grad().Fill(0.1f);  // must be non-zero to trigger the update
  Sgd sgd({ParamEntry{"w", w, nullptr}}, 0.1f, /*weight_decay=*/1.0f);
  sgd.Step();
  // update = lr * (grad + wd * w) = 0.1 * 1.1 = 0.11.
  EXPECT_NEAR(w->value().At(0, 0), 0.89f, 1e-5f);
}

TEST(OptimizerTest, LazyDecaySkipsUntouchedDenseParams) {
  // Parameters with identically-zero gradients must not move even with
  // weight decay on (the stage-1/stage-2 protection; see optimizer.h).
  ag::TensorPtr w = ag::Variable(Matrix(1, 2, 1.0f));
  Adam adam({ParamEntry{"w", w, nullptr}}, 0.1f, /*weight_decay=*/0.1f);
  for (int i = 0; i < 50; ++i) adam.Step();
  EXPECT_FLOAT_EQ(w->value().At(0, 0), 1.0f);
}

TEST(OptimizerTest, SparseAdamUpdatesOnlyTouchedRows) {
  Rng rng(1);
  Embedding emb("e", 4, 2, &rng);
  const Matrix before = emb.table()->value();
  Adam adam(emb.Parameters(), 0.1f);
  {
    ag::Tape tape;
    ag::TensorPtr out = emb.Forward(&tape, {1});
    ag::TensorPtr loss = ag::SumAll(&tape, out);
    tape.Backward(loss);
  }
  adam.Step();
  // Row 1 moved, others untouched.
  EXPECT_FALSE(AllClose(emb.table()->value().Row(1), before.Row(1)));
  EXPECT_TRUE(AllClose(emb.table()->value().Row(0), before.Row(0)));
  EXPECT_TRUE(AllClose(emb.table()->value().Row(3), before.Row(3)));
}

TEST(OptimizerTest, SparseStepClearsTouchedSetAndRowGrads) {
  Rng rng(2);
  Embedding emb("e", 3, 2, &rng);
  Adam adam(emb.Parameters(), 0.1f);
  {
    ag::Tape tape;
    ag::TensorPtr loss = ag::SumAll(&tape, emb.Forward(&tape, {0, 2}));
    tape.Backward(loss);
  }
  adam.Step();
  EXPECT_TRUE(emb.Parameters()[0].touched_rows->empty());
  EXPECT_FLOAT_EQ(emb.table()->grad().At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(emb.table()->grad().At(2, 0), 0.0f);
}

TEST(OptimizerTest, LazyAdamRowBiasCorrectionIsPerRow) {
  // A row touched for the first time late in training must take a
  // first-step-sized update (bias correction from its own counter), not a
  // tiny one.
  Rng rng(3);
  Embedding emb("e", 2, 1, &rng);
  emb.table()->mutable_value().Fill(0.0f);
  Adam adam(emb.Parameters(), 0.1f);
  // Touch row 0 for 20 steps.
  for (int i = 0; i < 20; ++i) {
    ag::Tape tape;
    ag::TensorPtr loss = ag::SumAll(&tape, emb.Forward(&tape, {0}));
    tape.Backward(loss);
    adam.Step();
  }
  // First touch of row 1: the update magnitude should be ~lr.
  {
    ag::Tape tape;
    ag::TensorPtr loss = ag::SumAll(&tape, emb.Forward(&tape, {1}));
    tape.Backward(loss);
    adam.Step();
  }
  EXPECT_NEAR(emb.table()->value().At(1, 0), -0.1f, 1e-3f);
}

TEST(OptimizerTest, LearningRateSetter) {
  ag::TensorPtr w = ag::Variable(Matrix(1, 1, 0.0f));
  Sgd sgd({ParamEntry{"w", w, nullptr}}, 0.1f);
  sgd.set_learning_rate(0.5f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.5f);
  w->grad().Fill(1.0f);
  sgd.Step();
  EXPECT_FLOAT_EQ(w->value().At(0, 0), -0.5f);
}

}  // namespace
}  // namespace groupsa::nn
