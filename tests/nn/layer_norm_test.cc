#include "nn/layer_norm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

TEST(LayerNormTest, NormalizesEachRow) {
  LayerNorm ln("ln", 4);
  Matrix input = Matrix::FromRows({{1, 2, 3, 4}, {10, 10, 10, 30}});
  ag::TensorPtr x = ag::Constant(input);
  ag::TensorPtr y = ln.Forward(nullptr, x);
  for (int r = 0; r < 2; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int c = 0; c < 4; ++c) mean += y->value().At(r, c);
    mean /= 4.0;
    for (int c = 0; c < 4; ++c) {
      const double d = y->value().At(r, c) - mean;
      var += d * d;
    }
    var /= 4.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, DefaultGainOneBiasZero) {
  LayerNorm ln("ln", 3);
  const auto params = ln.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_FLOAT_EQ(params[0].tensor->value().At(0, 0), 1.0f);  // gain
  EXPECT_FLOAT_EQ(params[1].tensor->value().At(0, 0), 0.0f);  // bias
}

TEST(LayerNormTest, GainAndBiasApplied) {
  LayerNorm ln("ln", 2);
  ln.Parameters()[0].tensor->mutable_value().Fill(2.0f);
  ln.Parameters()[1].tensor->mutable_value().Fill(5.0f);
  ag::TensorPtr x = ag::Constant(Matrix::FromRows({{-1, 1}}));
  ag::TensorPtr y = ln.Forward(nullptr, x);
  // Normalized row is (-1, 1); y = 2 * x_hat + 5.
  EXPECT_NEAR(y->value().At(0, 0), 3.0f, 1e-3f);
  EXPECT_NEAR(y->value().At(0, 1), 7.0f, 1e-3f);
}

TEST(LayerNormTest, ConstantRowMapsToBias) {
  LayerNorm ln("ln", 3);
  ag::TensorPtr x = ag::Constant(Matrix(1, 3, 42.0f));
  ag::TensorPtr y = ln.Forward(nullptr, x);
  // Zero variance: x_hat = 0, so output = bias = 0.
  for (int c = 0; c < 3; ++c) EXPECT_NEAR(y->value().At(0, c), 0.0f, 1e-2f);
}

TEST(LayerNormTest, GradientCheck) {
  Rng rng(7);
  LayerNorm ln("ln", 4);
  Matrix input(2, 4);
  input.FillUniform(&rng, -1.0f, 1.0f);
  ag::TensorPtr x = ag::Variable(std::move(input));
  std::vector<ag::TensorPtr> params = {x};
  for (const auto& p : ln.Parameters()) params.push_back(p.tensor);
  auto result = ag::CheckGradients(
      [&](ag::Tape* tape) {
        ag::TensorPtr y = ln.Forward(tape, x);
        // Mix with distinct weights to exercise every coordinate.
        Matrix w(2, 4);
        for (int i = 0; i < w.size(); ++i) w.data()[i] = 0.3f * (i + 1);
        return ag::SumAll(tape, ag::Mul(tape, y, ag::Constant(std::move(w))));
      },
      params, /*step=*/1e-2f, /*abs_tolerance=*/5e-3f,
      /*rel_tolerance=*/3e-2f);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

}  // namespace
}  // namespace groupsa::nn
