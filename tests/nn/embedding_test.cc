#include "nn/embedding.h"

#include <gtest/gtest.h>

#include "autograd/ops.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

TEST(EmbeddingTest, LookupReturnsTableRow) {
  Rng rng(1);
  Embedding emb("e", 5, 3, &rng);
  ag::TensorPtr row = emb.Lookup(nullptr, 2);
  EXPECT_TRUE(AllClose(row->value(), emb.Row(2)));
}

TEST(EmbeddingTest, ForwardGathersMultiple) {
  Rng rng(2);
  Embedding emb("e", 5, 3, &rng);
  ag::Tape tape;
  ag::TensorPtr out = emb.Forward(&tape, {4, 0, 4});
  EXPECT_EQ(out->rows(), 3);
  EXPECT_TRUE(AllClose(out->value().Row(0), emb.Row(4)));
  EXPECT_TRUE(AllClose(out->value().Row(1), emb.Row(0)));
}

TEST(EmbeddingTest, TracksTouchedRowsAsSparseParam) {
  Rng rng(3);
  Embedding emb("e", 10, 2, &rng);
  const auto params = emb.Parameters();
  ASSERT_EQ(params.size(), 1u);
  ASSERT_NE(params[0].touched_rows, nullptr);
  EXPECT_TRUE(params[0].touched_rows->empty());
  ag::Tape tape;
  ag::TensorPtr a = emb.Forward(&tape, {1, 7});
  ag::TensorPtr b = emb.Forward(&tape, {7});
  // Touched rows are recorded during the backward pass (the forward pass is
  // pure so concurrent no-tape inference is thread-safe), so nothing is
  // tracked yet.
  EXPECT_TRUE(params[0].touched_rows->empty());
  ag::TensorPtr loss =
      ag::Add(&tape, ag::SumAll(&tape, a), ag::SumAll(&tape, b));
  tape.Backward(loss);
  EXPECT_EQ(params[0].touched_rows->size(), 2u);
  EXPECT_TRUE(params[0].touched_rows->count(1));
  EXPECT_TRUE(params[0].touched_rows->count(7));
}

TEST(EmbeddingTest, GradientScattersIntoTouchedRows) {
  Rng rng(4);
  Embedding emb("e", 4, 2, &rng);
  ag::Tape tape;
  ag::TensorPtr out = emb.Forward(&tape, {1, 1, 3});
  ag::TensorPtr loss = ag::SumAll(&tape, out);
  tape.Backward(loss);
  const Matrix& grad = emb.table()->grad();
  EXPECT_FLOAT_EQ(grad.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(grad.At(1, 0), 2.0f);  // row 1 gathered twice
  EXPECT_FLOAT_EQ(grad.At(3, 0), 1.0f);
}

TEST(EmbeddingTest, SetTableOverwritesValues) {
  Rng rng(5);
  Embedding emb("e", 2, 2, &rng);
  Matrix values = Matrix::FromRows({{1, 2}, {3, 4}});
  emb.SetTable(values);
  EXPECT_TRUE(AllClose(emb.Row(1), Matrix::FromRows({{3, 4}})));
}

TEST(EmbeddingTest, GlorotInitialized) {
  Rng rng(6);
  Embedding emb("e", 50, 50, &rng);
  EXPECT_GT(emb.table()->value().MaxAbs(), 0.0f);
  EXPECT_LE(emb.table()->value().MaxAbs(), 0.25f);
}

}  // namespace
}  // namespace groupsa::nn
