#include "nn/linear.h"

#include <gtest/gtest.h>

#include "autograd/grad_check.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

TEST(LinearTest, ForwardShape) {
  Rng rng(1);
  Linear layer("l", 4, 3, &rng);
  ag::TensorPtr x = ag::Constant(Matrix(5, 4, 1.0f));
  ag::Tape tape;
  ag::TensorPtr y = layer.Forward(&tape, x);
  EXPECT_EQ(y->rows(), 5);
  EXPECT_EQ(y->cols(), 3);
}

TEST(LinearTest, ForwardMatchesManualAffine) {
  Rng rng(2);
  Linear layer("l", 2, 2, &rng);
  // Overwrite with known weights.
  layer.weight()->mutable_value() = Matrix::FromRows({{1, 2}, {3, 4}});
  layer.bias()->mutable_value() = Matrix::FromRows({{10, 20}});
  ag::TensorPtr x = ag::Constant(Matrix::FromRows({{1, 1}}));
  ag::TensorPtr y = layer.Forward(nullptr, x);
  EXPECT_FLOAT_EQ(y->value().At(0, 0), 14.0f);
  EXPECT_FLOAT_EQ(y->value().At(0, 1), 26.0f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(3);
  Linear layer("l", 2, 2, &rng, /*use_bias=*/false);
  layer.weight()->mutable_value() = Matrix::FromRows({{1, 0}, {0, 1}});
  ag::TensorPtr x = ag::Constant(Matrix::FromRows({{5, 7}}));
  ag::TensorPtr y = layer.Forward(nullptr, x);
  EXPECT_FLOAT_EQ(y->value().At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y->value().At(0, 1), 7.0f);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(LinearTest, RegistersParameters) {
  Rng rng(4);
  Linear layer("mylayer", 3, 2, &rng);
  const auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "mylayer.weight");
  EXPECT_EQ(params[1].name, "mylayer.bias");
  EXPECT_EQ(layer.NumParameterScalars(), 3 * 2 + 2);
}

TEST(LinearTest, GradientsFlowToWeightAndBias) {
  Rng rng(5);
  Linear layer("l", 3, 2, &rng);
  ag::TensorPtr x = ag::Variable(Matrix(2, 3, 0.5f));
  auto result = ag::CheckGradients(
      [&](ag::Tape* tape) {
        return ag::SumAll(tape, layer.Forward(tape, x));
      },
      {layer.weight(), layer.bias(), x});
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(LinearTest, InitGlorotChangesScale) {
  Rng rng(6);
  Linear layer("l", 100, 100, &rng);
  layer.InitGlorot(&rng);
  // Glorot bound for 100x100 is sqrt(6/200) ~= 0.173.
  EXPECT_LE(layer.weight()->value().MaxAbs(), 0.18f);
  EXPECT_GT(layer.weight()->value().MaxAbs(), 0.1f);
}

}  // namespace
}  // namespace groupsa::nn
