#include "nn/attention_pool.h"

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

TEST(AttentionPoolTest, OutputShapes) {
  Rng rng(1);
  AttentionPool pool("p", 4, 4, 8, &rng);
  ag::TensorPtr guide = ag::Constant(Matrix(1, 4, 0.2f));
  ag::TensorPtr context = ag::Constant(Matrix(5, 4, 0.1f));
  AttentionPoolOutput out = pool.Forward(nullptr, guide, context);
  EXPECT_EQ(out.pooled->rows(), 1);
  EXPECT_EQ(out.pooled->cols(), 4);
  EXPECT_EQ(out.weights.rows(), 1);
  EXPECT_EQ(out.weights.cols(), 5);
}

TEST(AttentionPoolTest, WeightsFormDistribution) {
  Rng rng(2);
  AttentionPool pool("p", 3, 3, 6, &rng);
  Matrix ctx(4, 3);
  ctx.FillUniform(&rng, -1.0f, 1.0f);
  AttentionPoolOutput out = pool.Forward(
      nullptr, ag::Constant(Matrix(1, 3, 0.5f)), ag::Constant(ctx));
  float total = 0.0f;
  for (int c = 0; c < 4; ++c) {
    EXPECT_GT(out.weights.At(0, c), 0.0f);
    total += out.weights.At(0, c);
  }
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(AttentionPoolTest, SingleContextRowGetsFullWeight) {
  Rng rng(3);
  AttentionPool pool("p", 3, 3, 6, &rng);
  Matrix ctx(1, 3, 0.7f);
  AttentionPoolOutput out = pool.Forward(
      nullptr, ag::Constant(Matrix(1, 3, 0.5f)), ag::Constant(ctx));
  EXPECT_FLOAT_EQ(out.weights.At(0, 0), 1.0f);
  EXPECT_TRUE(AllClose(out.pooled->value(), ctx));
}

TEST(AttentionPoolTest, PooledIsConvexCombination) {
  Rng rng(4);
  AttentionPool pool("p", 2, 2, 4, &rng);
  Matrix ctx = Matrix::FromRows({{0, 0}, {1, 1}});
  AttentionPoolOutput out = pool.Forward(
      nullptr, ag::Constant(Matrix(1, 2, 0.1f)), ag::Constant(ctx));
  // Pooled entries must lie inside the convex hull [0, 1].
  for (int c = 0; c < 2; ++c) {
    EXPECT_GE(out.pooled->value().At(0, c), 0.0f);
    EXPECT_LE(out.pooled->value().At(0, c), 1.0f);
  }
}

TEST(AttentionPoolTest, DifferentGuidesGiveDifferentWeights) {
  Rng rng(5);
  AttentionPool pool("p", 4, 4, 8, &rng);
  Matrix ctx(3, 4);
  ctx.FillUniform(&rng, -1.0f, 1.0f);
  Matrix g1(1, 4);
  Matrix g2(1, 4);
  g1.FillUniform(&rng, -1.0f, 1.0f);
  g2.FillUniform(&rng, -1.0f, 1.0f);
  auto out1 = pool.Forward(nullptr, ag::Constant(g1), ag::Constant(ctx));
  auto out2 = pool.Forward(nullptr, ag::Constant(g2), ag::Constant(ctx));
  EXPECT_FALSE(AllClose(out1.weights, out2.weights, 1e-6f));
}

TEST(AttentionPoolTest, GradientsFlowToAllParams) {
  Rng rng(6);
  AttentionPool pool("p", 2, 2, 4, &rng);
  ag::TensorPtr guide = ag::Variable(Matrix(1, 2, 0.4f));
  Matrix ctx_m(3, 2);
  ctx_m.FillUniform(&rng, -0.5f, 0.5f);
  ag::TensorPtr context = ag::Variable(std::move(ctx_m));
  std::vector<ag::TensorPtr> params = {guide, context};
  for (const auto& p : pool.Parameters()) params.push_back(p.tensor);
  auto result = ag::CheckGradients(
      [&](ag::Tape* tape) {
        return ag::SumAll(tape, pool.Forward(tape, guide, context).pooled);
      },
      params);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

}  // namespace
}  // namespace groupsa::nn
