#include "nn/transformer_block.h"

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

TEST(TransformerBlockTest, PreservesShape) {
  Rng rng(1);
  TransformerBlock block("b", 4, 8, &rng);
  Matrix x(5, 4);
  x.FillUniform(&rng, -0.5f, 0.5f);
  auto out = block.Forward(nullptr, ag::Constant(x), nullptr);
  EXPECT_EQ(out.values->rows(), 5);
  EXPECT_EQ(out.values->cols(), 4);
  EXPECT_EQ(out.attention.rows(), 5);
  EXPECT_EQ(out.attention.cols(), 5);
}

TEST(TransformerBlockTest, NearIdentityAtInit) {
  // The value projection and second FFN layer start near zero, so the block
  // should barely perturb its input (the residual stream dominates).
  Rng rng(2);
  TransformerBlock block("b", 8, 8, &rng);
  Matrix x(4, 8);
  x.FillUniform(&rng, -0.1f, 0.1f);
  auto out = block.Forward(nullptr, ag::Constant(x), nullptr);
  Matrix diff = out.values->value();
  diff.SubInPlace(x);
  EXPECT_LT(diff.MaxAbs(), 0.05f);
}

TEST(TransformerBlockTest, SocialMaskReachesAttention) {
  Rng rng(3);
  TransformerBlock block("b", 4, 4, &rng);
  Matrix x(3, 4);
  x.FillUniform(&rng, -1.0f, 1.0f);
  Matrix bias = MakeSocialBias(3, [](int, int) { return false; });
  auto out = block.Forward(nullptr, ag::Constant(x), &bias);
  EXPECT_FLOAT_EQ(out.attention.At(0, 0), 1.0f);
  EXPECT_EQ(out.attention.At(0, 1), 0.0f);
}

TEST(TransformerBlockTest, GradientCheck) {
  Rng rng(4);
  TransformerBlock block("b", 3, 4, &rng);
  Matrix x_m(2, 3);
  x_m.FillUniform(&rng, -0.5f, 0.5f);
  ag::TensorPtr x = ag::Variable(std::move(x_m));
  std::vector<ag::TensorPtr> params = {x};
  for (const auto& p : block.Parameters()) params.push_back(p.tensor);
  auto result = ag::CheckGradients(
      [&](ag::Tape* tape) {
        return ag::SumAll(tape, block.Forward(tape, x, nullptr).values);
      },
      params, /*step=*/1e-2f, /*abs_tolerance=*/6e-3f,
      /*rel_tolerance=*/4e-2f);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(TransformerBlockTest, ParameterTreeIncludesAllSubmodules) {
  Rng rng(5);
  TransformerBlock block("b", 4, 8, &rng);
  // attn (3) + 2 layer norms (2 each) + 2 FFN linears (2 each) = 11.
  EXPECT_EQ(block.Parameters().size(), 11u);
}

}  // namespace
}  // namespace groupsa::nn
