#include "nn/mlp.h"

#include <gtest/gtest.h>

#include "autograd/grad_check.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

TEST(MlpTest, OutputShape) {
  Rng rng(1);
  Mlp mlp("m", {4, 8, 2}, &rng);
  ag::TensorPtr x = ag::Constant(Matrix(3, 4, 0.1f));
  ag::TensorPtr y = mlp.Forward(nullptr, x);
  EXPECT_EQ(y->rows(), 3);
  EXPECT_EQ(y->cols(), 2);
  EXPECT_EQ(mlp.num_layers(), 2);
  EXPECT_EQ(mlp.in_dim(), 4);
  EXPECT_EQ(mlp.out_dim(), 2);
}

TEST(MlpTest, SingleAffineLayerNoOutputActivation) {
  Rng rng(2);
  Mlp mlp("m", {2, 1}, &rng, Activation::kRelu, Activation::kNone);
  // Output may be negative because the last layer has no activation.
  ag::TensorPtr x = ag::Constant(Matrix(1, 2, -100.0f));
  ag::TensorPtr y = mlp.Forward(nullptr, x);
  EXPECT_EQ(y->cols(), 1);
}

TEST(MlpTest, ReluOutputActivationClampsNegative) {
  Rng rng(3);
  Mlp mlp("m", {2, 2}, &rng, Activation::kRelu, Activation::kRelu);
  ag::TensorPtr x = ag::Constant(Matrix(1, 2, -100.0f));
  ag::TensorPtr y = mlp.Forward(nullptr, x);
  for (int c = 0; c < 2; ++c) EXPECT_GE(y->value().At(0, c), 0.0f);
}

TEST(MlpTest, SigmoidOutputBounded) {
  Rng rng(4);
  Mlp mlp("m", {3, 4, 2}, &rng, Activation::kRelu, Activation::kSigmoid);
  ag::TensorPtr x = ag::Constant(Matrix(2, 3, 5.0f));
  ag::TensorPtr y = mlp.Forward(nullptr, x);
  for (int i = 0; i < y->value().size(); ++i) {
    EXPECT_GT(y->value().data()[i], 0.0f);
    EXPECT_LT(y->value().data()[i], 1.0f);
  }
}

TEST(MlpTest, ParameterCount) {
  Rng rng(5);
  Mlp mlp("m", {4, 8, 2}, &rng);
  EXPECT_EQ(mlp.NumParameterScalars(), (4 * 8 + 8) + (8 * 2 + 2));
}

TEST(MlpTest, GradientsFlowThroughAllLayers) {
  Rng rng(6);
  Mlp mlp("m", {3, 4, 1}, &rng, Activation::kTanh, Activation::kNone);
  ag::TensorPtr x = ag::Variable(Matrix(2, 3, 0.3f));
  std::vector<ag::TensorPtr> params = {x};
  for (const auto& p : mlp.Parameters()) params.push_back(p.tensor);
  auto result = ag::CheckGradients(
      [&](ag::Tape* tape) { return ag::SumAll(tape, mlp.Forward(tape, x)); },
      params);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(ActivateTest, AllKinds) {
  ag::TensorPtr x = ag::Constant(Matrix::FromRows({{-1.0f, 1.0f}}));
  EXPECT_FLOAT_EQ(Activate(nullptr, x, Activation::kNone)->value().At(0, 0),
                  -1.0f);
  EXPECT_FLOAT_EQ(Activate(nullptr, x, Activation::kRelu)->value().At(0, 0),
                  0.0f);
  EXPECT_NEAR(Activate(nullptr, x, Activation::kSigmoid)->value().At(0, 1),
              0.7311f, 1e-4f);
  EXPECT_NEAR(Activate(nullptr, x, Activation::kTanh)->value().At(0, 1),
              0.7616f, 1e-4f);
}

}  // namespace
}  // namespace groupsa::nn
