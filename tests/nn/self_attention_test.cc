#include "nn/self_attention.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "autograd/grad_check.h"
#include "autograd/ops.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

TEST(MakeSocialBiasTest, SelfLoopAlwaysEnabled) {
  Matrix bias = MakeSocialBias(3, [](int, int) { return false; });
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(bias.At(i, i), 0.0f);
    for (int j = 0; j < 3; ++j) {
      if (i != j) {
        EXPECT_TRUE(std::isinf(bias.At(i, j)));
      }
    }
  }
}

TEST(MakeSocialBiasTest, ConnectionsUnmasked) {
  Matrix bias =
      MakeSocialBias(3, [](int i, int j) { return i + j == 1; });  // 0-1
  EXPECT_EQ(bias.At(0, 1), 0.0f);
  EXPECT_EQ(bias.At(1, 0), 0.0f);
  EXPECT_TRUE(std::isinf(bias.At(0, 2)));
  EXPECT_TRUE(std::isinf(bias.At(2, 1)));
}

TEST(SelfAttentionTest, OutputShapesAndRowStochasticAttention) {
  Rng rng(1);
  SocialSelfAttention attn("a", 4, 4, 4, &rng);
  Matrix x(5, 4);
  x.FillUniform(&rng, -1.0f, 1.0f);
  SelfAttentionOutput out =
      attn.Forward(nullptr, ag::Constant(x), /*social_bias=*/nullptr);
  EXPECT_EQ(out.values->rows(), 5);
  EXPECT_EQ(out.values->cols(), 4);
  EXPECT_EQ(out.attention.rows(), 5);
  for (int r = 0; r < 5; ++r) {
    float total = 0.0f;
    for (int c = 0; c < 5; ++c) total += out.attention.At(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(SelfAttentionTest, SocialMaskZeroesDisconnectedPairs) {
  Rng rng(2);
  SocialSelfAttention attn("a", 4, 4, 4, &rng);
  Matrix x(3, 4);
  x.FillUniform(&rng, -1.0f, 1.0f);
  // Only 0-1 connected.
  Matrix bias = MakeSocialBias(3, [](int i, int j) { return i + j == 1; });
  SelfAttentionOutput out = attn.Forward(nullptr, ag::Constant(x), &bias);
  EXPECT_EQ(out.attention.At(0, 2), 0.0f);
  EXPECT_EQ(out.attention.At(1, 2), 0.0f);
  EXPECT_EQ(out.attention.At(2, 0), 0.0f);
  EXPECT_EQ(out.attention.At(2, 1), 0.0f);
  EXPECT_FLOAT_EQ(out.attention.At(2, 2), 1.0f);  // isolated member: self
  EXPECT_GT(out.attention.At(0, 1), 0.0f);
}

TEST(SelfAttentionTest, FullyMaskedMemberAttendsSelfOnly) {
  Rng rng(3);
  SocialSelfAttention attn("a", 2, 2, 2, &rng);
  Matrix x(2, 2);
  x.FillUniform(&rng, -1.0f, 1.0f);
  Matrix bias = MakeSocialBias(2, [](int, int) { return false; });
  SelfAttentionOutput out = attn.Forward(nullptr, ag::Constant(x), &bias);
  EXPECT_FLOAT_EQ(out.attention.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.attention.At(1, 1), 1.0f);
}

TEST(SelfAttentionTest, SingleMemberGroup) {
  Rng rng(4);
  SocialSelfAttention attn("a", 3, 3, 3, &rng);
  Matrix x(1, 3, 0.5f);
  Matrix bias = MakeSocialBias(1, [](int, int) { return false; });
  SelfAttentionOutput out = attn.Forward(nullptr, ag::Constant(x), &bias);
  EXPECT_EQ(out.values->rows(), 1);
  EXPECT_FLOAT_EQ(out.attention.At(0, 0), 1.0f);
}

TEST(SelfAttentionTest, GradientCheckWithMask) {
  Rng rng(5);
  SocialSelfAttention attn("a", 3, 3, 3, &rng);
  Matrix x_m(3, 3);
  x_m.FillUniform(&rng, -0.5f, 0.5f);
  ag::TensorPtr x = ag::Variable(std::move(x_m));
  Matrix bias = MakeSocialBias(3, [](int i, int j) { return i + j != 3; });
  std::vector<ag::TensorPtr> params = {x};
  for (const auto& p : attn.Parameters()) params.push_back(p.tensor);
  auto result = ag::CheckGradients(
      [&](ag::Tape* tape) {
        return ag::SumAll(tape, attn.Forward(tape, x, &bias).values);
      },
      params);
  EXPECT_TRUE(result.ok) << result.worst_entry;
}

TEST(SelfAttentionTest, SmallValueInitShrinksOutput) {
  Rng rng(6);
  SocialSelfAttention big("a", 4, 4, 4, &rng, /*small_value_init=*/false);
  SocialSelfAttention small("b", 4, 4, 4, &rng, /*small_value_init=*/true);
  Matrix x(3, 4);
  x.FillUniform(&rng, -1.0f, 1.0f);
  auto out_big = big.Forward(nullptr, ag::Constant(x), nullptr);
  auto out_small = small.Forward(nullptr, ag::Constant(x), nullptr);
  EXPECT_LT(out_small.values->value().MaxAbs(),
            out_big.values->value().MaxAbs());
  EXPECT_LT(out_small.values->value().MaxAbs(), 0.1f);
}

}  // namespace
}  // namespace groupsa::nn
