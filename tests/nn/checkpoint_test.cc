#include "nn/checkpoint.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/mlp.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  Rng rng(1);
  Mlp source("m", {3, 4, 2}, &rng);
  const std::string path = TempPath("ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(source.Parameters(), path).ok());

  Rng rng2(99);
  Mlp dest("m", {3, 4, 2}, &rng2);
  ASSERT_TRUE(LoadParameters(dest.Parameters(), path).ok());

  const auto src_params = source.Parameters();
  const auto dst_params = dest.Parameters();
  ASSERT_EQ(src_params.size(), dst_params.size());
  for (size_t i = 0; i < src_params.size(); ++i) {
    EXPECT_TRUE(tensor::AllClose(src_params[i].tensor->value(),
                                 dst_params[i].tensor->value()));
  }
}

TEST(CheckpointTest, LoadRejectsMissingFile) {
  Rng rng(2);
  Linear layer("l", 2, 2, &rng);
  EXPECT_FALSE(LoadParameters(layer.Parameters(),
                              TempPath("does_not_exist.bin"))
                   .ok());
}

TEST(CheckpointTest, LoadRejectsShapeMismatch) {
  Rng rng(3);
  Linear small("l", 2, 2, &rng);
  const std::string path = TempPath("ckpt_shape.bin");
  ASSERT_TRUE(SaveParameters(small.Parameters(), path).ok());
  Linear big("l", 3, 3, &rng);  // same names, different shapes
  const Status s = LoadParameters(big.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("shape mismatch"), std::string::npos);
}

TEST(CheckpointTest, LoadRejectsUnknownParameter) {
  Rng rng(4);
  Linear a("a", 2, 2, &rng);
  const std::string path = TempPath("ckpt_unknown.bin");
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  Linear b("b", 2, 2, &rng);  // different names
  EXPECT_FALSE(LoadParameters(b.Parameters(), path).ok());
}

TEST(CheckpointTest, LoadRejectsGarbageMagic) {
  const std::string path = TempPath("ckpt_garbage.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  Rng rng(5);
  Linear layer("l", 2, 2, &rng);
  const Status s = LoadParameters(layer.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos);
}

TEST(CheckpointTest, PartialFileReportsIncomplete) {
  Rng rng(6);
  Linear one("l", 2, 2, &rng);
  const std::string path = TempPath("ckpt_partial.bin");
  // Save only the weight entry, then try to load weight+bias.
  ASSERT_TRUE(SaveParameters({one.Parameters()[0]}, path).ok());
  const Status s = LoadParameters(one.Parameters(), path);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace groupsa::nn
