#include "nn/checkpoint.h"

#include <csignal>
#include <cstdio>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/serialize.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace groupsa::nn {
namespace {

using tensor::Matrix;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

// Deep copy of current parameter values, for model-untouched assertions.
std::vector<Matrix> SnapshotValues(const std::vector<ParamEntry>& params) {
  std::vector<Matrix> values;
  for (const ParamEntry& p : params) values.push_back(p.tensor->value());
  return values;
}

bool ValuesEqual(const std::vector<ParamEntry>& params,
                 const std::vector<Matrix>& values) {
  for (size_t i = 0; i < params.size(); ++i) {
    const Matrix& live = params[i].tensor->value();
    if (live.rows() != values[i].rows() || live.cols() != values[i].cols())
      return false;
    for (int r = 0; r < live.rows(); ++r)
      for (int c = 0; c < live.cols(); ++c)
        if (live.At(r, c) != values[i].At(r, c)) return false;
  }
  return true;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  Rng rng(1);
  Mlp source("m", {3, 4, 2}, &rng);
  const std::string path = TempPath("ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveParameters(source.Parameters(), path).ok());

  Rng rng2(99);
  Mlp dest("m", {3, 4, 2}, &rng2);
  ASSERT_TRUE(LoadParameters(dest.Parameters(), path).ok());

  const auto src_params = source.Parameters();
  const auto dst_params = dest.Parameters();
  ASSERT_EQ(src_params.size(), dst_params.size());
  for (size_t i = 0; i < src_params.size(); ++i) {
    EXPECT_TRUE(tensor::AllClose(src_params[i].tensor->value(),
                                 dst_params[i].tensor->value()));
  }
}

TEST(CheckpointTest, ResaveIsByteIdentical) {
  Rng rng(7);
  Mlp source("m", {3, 4, 2}, &rng);
  const std::string path_a = TempPath("ckpt_resave_a.bin");
  const std::string path_b = TempPath("ckpt_resave_b.bin");
  ASSERT_TRUE(SaveParameters(source.Parameters(), path_a).ok());

  Rng rng2(8);
  Mlp dest("m", {3, 4, 2}, &rng2);
  ASSERT_TRUE(LoadParameters(dest.Parameters(), path_a).ok());
  ASSERT_TRUE(SaveParameters(dest.Parameters(), path_b).ok());
  EXPECT_EQ(ReadFile(path_a), ReadFile(path_b));
}

TEST(CheckpointTest, NoTmpFileLeftBehind) {
  Rng rng(9);
  Linear layer("l", 2, 2, &rng);
  const std::string path = TempPath("ckpt_tmp_gone.bin");
  ASSERT_TRUE(SaveParameters(layer.Parameters(), path).ok());
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(CheckpointTest, LoadRejectsMissingFile) {
  Rng rng(2);
  Linear layer("l", 2, 2, &rng);
  EXPECT_FALSE(LoadParameters(layer.Parameters(),
                              TempPath("does_not_exist.bin"))
                   .ok());
}

TEST(CheckpointTest, LoadRejectsShapeMismatch) {
  Rng rng(3);
  Linear small("l", 2, 2, &rng);
  const std::string path = TempPath("ckpt_shape.bin");
  ASSERT_TRUE(SaveParameters(small.Parameters(), path).ok());
  Linear big("l", 3, 3, &rng);  // same names, different shapes
  const auto before = SnapshotValues(big.Parameters());
  const Status s = LoadParameters(big.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("shape mismatch"), std::string::npos);
  EXPECT_TRUE(ValuesEqual(big.Parameters(), before));
}

TEST(CheckpointTest, LoadRejectsUnknownParameter) {
  Rng rng(4);
  Linear a("a", 2, 2, &rng);
  const std::string path = TempPath("ckpt_unknown.bin");
  ASSERT_TRUE(SaveParameters(a.Parameters(), path).ok());
  Linear b("b", 2, 2, &rng);  // different names
  const Status s = LoadParameters(b.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown parameter"), std::string::npos);
}

TEST(CheckpointTest, LoadRejectsDuplicateParameter) {
  Rng rng(14);
  Linear layer("l", 2, 2, &rng);
  CheckpointWriter writer;
  std::vector<ParamEntry> doubled = layer.Parameters();
  const auto params = layer.Parameters();
  doubled.insert(doubled.end(), params.begin(), params.end());
  writer.AddSection("params", EncodeParameters(doubled));
  const std::string path = TempPath("ckpt_duplicate.bin");
  ASSERT_TRUE(writer.Commit(path).ok());
  const Status s = LoadParameters(layer.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate parameter"), std::string::npos);
}

TEST(CheckpointTest, PartialParameterSetLeavesModelUntouched) {
  Rng rng(6);
  Linear one("l", 2, 2, &rng);
  const std::string path = TempPath("ckpt_partial.bin");
  // Save only the weight entry, then try to load weight+bias.
  ASSERT_TRUE(SaveParameters({one.Parameters()[0]}, path).ok());
  const auto before = SnapshotValues(one.Parameters());
  const Status s = LoadParameters(one.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing"), std::string::npos);
  // All-or-nothing: even the parameter that WAS in the file is unchanged.
  EXPECT_TRUE(ValuesEqual(one.Parameters(), before));
}

TEST(CheckpointTest, GarbageFileRejectedByFileCrc) {
  const std::string path = TempPath("ckpt_garbage.bin");
  WriteFile(path, "this is definitely not a checkpoint file at all");
  Rng rng(5);
  Linear layer("l", 2, 2, &rng);
  const Status s = LoadParameters(layer.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos);
}

// A file with a valid trailer CRC but the wrong magic exercises the header
// check behind the CRC tier.
TEST(CheckpointTest, BadMagicRejected) {
  ByteWriter w;
  w.WriteU32(0x58585858);  // "XXXX"
  w.WriteU32(2);
  w.WriteU32(0);
  const uint32_t crc = Crc32Of(w.bytes().data(), w.bytes().size());
  w.WriteU32(crc);
  const std::string path = TempPath("ckpt_bad_magic.bin");
  WriteFile(path, w.bytes());
  Rng rng(5);
  Linear layer("l", 2, 2, &rng);
  const Status s = LoadParameters(layer.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("magic"), std::string::npos);
}

TEST(CheckpointTest, LegacyV1MagicRejectedWithExplanation) {
  ByteWriter w;
  w.WriteU32(0x41505347);  // "GSPA", the v1 magic
  w.WriteU32(1);
  w.WriteU32(0);
  const uint32_t crc = Crc32Of(w.bytes().data(), w.bytes().size());
  w.WriteU32(crc);
  const std::string path = TempPath("ckpt_v1_magic.bin");
  WriteFile(path, w.bytes());
  Rng rng(5);
  Linear layer("l", 2, 2, &rng);
  const Status s = LoadParameters(layer.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("legacy v1"), std::string::npos);
}

// Crash-safety core: every possible torn prefix of a checkpoint must be
// rejected, and a failed load must leave the in-memory model untouched.
TEST(CheckpointTest, EveryTruncationRejectedAndModelUntouched) {
  Rng rng(10);
  Mlp source("m", {3, 4, 2}, &rng);
  const std::string path = TempPath("ckpt_trunc_src.bin");
  ASSERT_TRUE(SaveParameters(source.Parameters(), path).ok());
  const std::string bytes = ReadFile(path);
  ASSERT_GT(bytes.size(), 16u);

  Rng rng2(11);
  Mlp dest("m", {3, 4, 2}, &rng2);
  const auto before = SnapshotValues(dest.Parameters());
  const std::string trunc_path = TempPath("ckpt_trunc.bin");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFile(trunc_path, bytes.substr(0, len));
    const Status s = LoadParameters(dest.Parameters(), trunc_path);
    EXPECT_FALSE(s.ok()) << "prefix of " << len << " bytes was accepted";
    ASSERT_TRUE(ValuesEqual(dest.Parameters(), before))
        << "model mutated by a " << len << "-byte torn file";
  }
  // Sanity: the full file loads.
  EXPECT_TRUE(LoadParameters(dest.Parameters(), path).ok());
}

TEST(CheckpointTest, EverySingleBitFlipCaughtByCrc) {
  Rng rng(12);
  Linear layer("l", 3, 2, &rng);
  const std::string path = TempPath("ckpt_flip_src.bin");
  ASSERT_TRUE(SaveParameters(layer.Parameters(), path).ok());
  const std::string bytes = ReadFile(path);

  Rng rng2(13);
  Linear dest("l", 3, 2, &rng2);
  const auto before = SnapshotValues(dest.Parameters());
  const std::string flip_path = TempPath("ckpt_flip.bin");
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {  // 3 bits per byte: cheap + dense
      std::string corrupted = bytes;
      corrupted[i] = static_cast<char>(corrupted[i] ^ (1 << bit));
      WriteFile(flip_path, corrupted);
      const Status s = LoadParameters(dest.Parameters(), flip_path);
      EXPECT_FALSE(s.ok()) << "bit " << bit << " of byte " << i;
      ASSERT_TRUE(ValuesEqual(dest.Parameters(), before));
    }
  }
}

TEST(CheckpointTest, InjectedWriteErrorReturnsStatusAndKeepsOldFile) {
  Rng rng(15);
  Linear layer("l", 2, 2, &rng);
  const std::string path = TempPath("ckpt_inject_err.bin");
  ASSERT_TRUE(SaveParameters(layer.Parameters(), path).ok());
  const std::string old_bytes = ReadFile(path);

  failpoint::Arm("checkpoint.write=error");
  const Status s = SaveParameters(layer.Parameters(), path);
  failpoint::DisarmAll();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("injected"), std::string::npos);
  // The previous checkpoint is still there, byte for byte, and no tmp file
  // litters the directory.
  EXPECT_EQ(ReadFile(path), old_bytes);
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

TEST(CheckpointTest, InjectedFsyncAndRenameFailuresKeepOldFile) {
  Rng rng(16);
  Linear layer("l", 2, 2, &rng);
  const std::string path = TempPath("ckpt_inject_fsync.bin");
  ASSERT_TRUE(SaveParameters(layer.Parameters(), path).ok());
  const std::string old_bytes = ReadFile(path);
  for (const char* spec :
       {"checkpoint.fsync=error", "checkpoint.rename=error"}) {
    failpoint::Arm(spec);
    EXPECT_FALSE(SaveParameters(layer.Parameters(), path).ok()) << spec;
    failpoint::DisarmAll();
    EXPECT_EQ(ReadFile(path), old_bytes) << spec;
  }
}

TEST(CheckpointTest, InjectedBitCorruptionCaughtAtLoad) {
  Rng rng(17);
  Linear layer("l", 4, 4, &rng);
  const std::string path = TempPath("ckpt_inject_corrupt.bin");
  failpoint::Arm("checkpoint.write=corrupt");
  ASSERT_TRUE(SaveParameters(layer.Parameters(), path).ok());
  failpoint::DisarmAll();
  const Status s = LoadParameters(layer.Parameters(), path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("CRC"), std::string::npos);
}

// Real process death in the middle of the on-disk write: the atomic
// tmp-then-rename protocol must leave the previous checkpoint intact. The
// payload is sized past one 64 KiB write chunk so the kill (armed on chunk
// 2) fires genuinely mid-file.
TEST(CheckpointCrashDeathTest, SigkillMidWriteLeavesOldCheckpointIntact) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(18);
  Embedding big("emb", /*count=*/300, /*dim=*/80, &rng);  // ~96 KiB payload
  const std::string path = TempPath("ckpt_sigkill.bin");
  ASSERT_TRUE(SaveParameters(big.Parameters(), path).ok());
  const std::string old_bytes = ReadFile(path);

  Rng rng2(19);
  Embedding changed("emb", 300, 80, &rng2);
  EXPECT_EXIT(
      {
        failpoint::Arm("checkpoint.write=kill@2");
        SaveParameters(changed.Parameters(), path).ok();
        std::exit(0);  // not reached: the failpoint SIGKILLs the child
      },
      ::testing::KilledBySignal(SIGKILL), "");

  // Old checkpoint untouched; loading it yields the ORIGINAL values.
  EXPECT_EQ(ReadFile(path), old_bytes);
  Rng rng3(20);
  Embedding loaded("emb", 300, 80, &rng3);
  ASSERT_TRUE(LoadParameters(loaded.Parameters(), path).ok());
  EXPECT_TRUE(tensor::AllClose(loaded.Parameters()[0].tensor->value(),
                               big.Parameters()[0].tensor->value()));
}

}  // namespace
}  // namespace groupsa::nn
