#include "nn/init.h"

#include <cmath>

#include <gtest/gtest.h>

namespace groupsa::nn {
namespace {

using tensor::Matrix;

TEST(InitTest, GlorotBoundRespected) {
  Rng rng(1);
  Matrix m(200, 100);
  GlorotUniform(&m, 200, 100, &rng);
  const float bound = std::sqrt(6.0f / 300.0f);
  EXPECT_LE(m.MaxAbs(), bound);
  EXPECT_GT(m.MaxAbs(), 0.8f * bound);  // some mass near the bound
}

TEST(InitTest, GlorotShapeOverloadUsesOwnDims) {
  Rng rng(2);
  Matrix m(50, 50);
  GlorotUniform(&m, &rng);
  EXPECT_LE(m.MaxAbs(), std::sqrt(6.0f / 100.0f));
}

TEST(InitTest, GlorotMeanNearZero) {
  Rng rng(3);
  Matrix m(100, 100);
  GlorotUniform(&m, &rng);
  EXPECT_NEAR(m.Mean(), 0.0f, 0.005f);
}

TEST(InitTest, GaussianMoments) {
  Rng rng(4);
  Matrix m(100, 100);
  GaussianInit(&m, 0.0f, 0.1f, &rng);
  EXPECT_NEAR(m.Mean(), 0.0f, 0.005f);
  // Sample stddev close to 0.1.
  EXPECT_NEAR(std::sqrt(m.SquaredNorm() / m.size()), 0.1f, 0.01f);
}

TEST(InitTest, GaussianNonZeroMean) {
  Rng rng(5);
  Matrix m(50, 50);
  GaussianInit(&m, 3.0f, 0.5f, &rng);
  EXPECT_NEAR(m.Mean(), 3.0f, 0.05f);
}

TEST(InitTest, DeterministicGivenSeed) {
  Rng a(6);
  Rng b(6);
  Matrix ma(10, 10);
  Matrix mb(10, 10);
  GlorotUniform(&ma, &a);
  GlorotUniform(&mb, &b);
  EXPECT_TRUE(AllClose(ma, mb));
}

}  // namespace
}  // namespace groupsa::nn
