#include "data/dataset.h"

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

Dataset MakeSmallDataset() {
  Dataset d;
  d.name = "small";
  d.num_users = 4;
  d.num_items = 5;
  d.user_item = {{0, 0}, {0, 1}, {1, 2}, {2, 3}};
  d.group_item = {{0, 4}, {1, 0}};
  d.social = SocialGraph(4, {{0, 1}, {1, 2}});
  d.groups = GroupTable({{0, 1}, {2, 3}});
  return d;
}

TEST(DatasetTest, ComputeStatsMatchesHandCount) {
  const Dataset d = MakeSmallDataset();
  const DatasetStats stats = d.ComputeStats();
  EXPECT_EQ(stats.num_users, 4);
  EXPECT_EQ(stats.num_items, 5);
  EXPECT_EQ(stats.num_groups, 2);
  EXPECT_DOUBLE_EQ(stats.avg_group_size, 2.0);
  EXPECT_DOUBLE_EQ(stats.avg_interactions_per_user, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_friends_per_user, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_interactions_per_group, 1.0);
}

TEST(DatasetTest, MatricesReflectEdges) {
  const Dataset d = MakeSmallDataset();
  const InteractionMatrix ui = d.UserItemMatrix();
  EXPECT_TRUE(ui.Has(0, 1));
  EXPECT_FALSE(ui.Has(3, 0));
  const InteractionMatrix gi = d.GroupItemMatrix();
  EXPECT_TRUE(gi.Has(0, 4));
  EXPECT_EQ(gi.num_rows(), 2);
}

TEST(DatasetTest, StatsToStringMentionsEveryField) {
  const std::string s = MakeSmallDataset().ComputeStats().ToString();
  EXPECT_NE(s.find("Users"), std::string::npos);
  EXPECT_NE(s.find("Groups"), std::string::npos);
  EXPECT_NE(s.find("group size"), std::string::npos);
  EXPECT_NE(s.find("friends"), std::string::npos);
}

}  // namespace
}  // namespace groupsa::data
