#include "data/interaction_matrix.h"

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

TEST(InteractionMatrixTest, EmptyMatrix) {
  InteractionMatrix m(3, 4, {});
  EXPECT_EQ(m.num_rows(), 3);
  EXPECT_EQ(m.num_cols(), 4);
  EXPECT_EQ(m.num_interactions(), 0);
  EXPECT_TRUE(m.Row(0).empty());
  EXPECT_EQ(m.AvgRowDegree(), 0.0);
}

TEST(InteractionMatrixTest, BuildsSortedUniqueRows) {
  InteractionMatrix m(2, 5, {{0, 3}, {0, 1}, {0, 3}, {1, 4}});
  EXPECT_EQ(m.num_interactions(), 3);  // duplicate dropped
  ASSERT_EQ(m.Row(0).size(), 2u);
  EXPECT_EQ(m.Row(0)[0], 1);
  EXPECT_EQ(m.Row(0)[1], 3);
}

TEST(InteractionMatrixTest, HasLookup) {
  InteractionMatrix m(2, 5, {{0, 2}, {1, 0}});
  EXPECT_TRUE(m.Has(0, 2));
  EXPECT_FALSE(m.Has(0, 0));
  EXPECT_TRUE(m.Has(1, 0));
  EXPECT_FALSE(m.Has(1, 4));
}

TEST(InteractionMatrixTest, DegreesAndAverages) {
  InteractionMatrix m(3, 3, {{0, 0}, {0, 1}, {1, 0}, {2, 0}});
  EXPECT_EQ(m.RowDegree(0), 2);
  EXPECT_EQ(m.RowDegree(2), 1);
  EXPECT_EQ(m.ColDegree(0), 3);
  EXPECT_EQ(m.ColDegree(1), 1);
  EXPECT_EQ(m.ColDegree(2), 0);
  EXPECT_DOUBLE_EQ(m.AvgRowDegree(), 4.0 / 3.0);
}

TEST(InteractionMatrixTest, DefaultConstructedIsEmpty) {
  InteractionMatrix m;
  EXPECT_EQ(m.num_rows(), 0);
  EXPECT_EQ(m.num_interactions(), 0);
}

}  // namespace
}  // namespace groupsa::data
