#include "data/group_table.h"

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

TEST(GroupTableTest, BasicAccess) {
  GroupTable t({{1, 2, 3}, {4, 5}});
  EXPECT_EQ(t.num_groups(), 2);
  EXPECT_EQ(t.GroupSize(0), 3);
  EXPECT_EQ(t.GroupSize(1), 2);
  EXPECT_EQ(t.Members(1)[0], 4);
}

TEST(GroupTableTest, SortsAndDeduplicatesMembers) {
  GroupTable t({{3, 1, 3, 2}});
  const auto& members = t.Members(0);
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], 1);
  EXPECT_EQ(members[2], 3);
}

TEST(GroupTableTest, AvgGroupSize) {
  GroupTable t({{0, 1}, {2, 3, 4, 5}});
  EXPECT_DOUBLE_EQ(t.AvgGroupSize(), 3.0);
}

TEST(GroupTableTest, EmptyTable) {
  GroupTable t;
  EXPECT_EQ(t.num_groups(), 0);
  EXPECT_EQ(t.AvgGroupSize(), 0.0);
}

TEST(GroupTableTest, SingletonGroup) {
  std::vector<std::vector<UserId>> members = {{7}};
  GroupTable t(members);
  EXPECT_EQ(t.GroupSize(0), 1);
  EXPECT_EQ(t.Members(0)[0], 7);
}

}  // namespace
}  // namespace groupsa::data
