#include "data/synthetic.h"

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

TEST(SyntheticWorldTest, DeterministicGivenSeed) {
  const SyntheticWorldConfig config = SyntheticWorldConfig::Tiny();
  SyntheticWorld a = GenerateWorld(config);
  SyntheticWorld b = GenerateWorld(config);
  ASSERT_EQ(a.dataset.user_item.size(), b.dataset.user_item.size());
  for (size_t i = 0; i < a.dataset.user_item.size(); ++i)
    EXPECT_TRUE(a.dataset.user_item[i] == b.dataset.user_item[i]);
  ASSERT_EQ(a.dataset.group_item.size(), b.dataset.group_item.size());
  EXPECT_EQ(a.dataset.social.num_edges(), b.dataset.social.num_edges());
}

TEST(SyntheticWorldTest, DifferentSeedsDiffer) {
  SyntheticWorldConfig config = SyntheticWorldConfig::Tiny();
  SyntheticWorld a = GenerateWorld(config);
  config.seed = config.seed + 1;
  SyntheticWorld b = GenerateWorld(config);
  EXPECT_NE(a.dataset.user_item.size(), b.dataset.user_item.size());
}

TEST(SyntheticWorldTest, DimensionsMatchConfig) {
  const SyntheticWorldConfig config = SyntheticWorldConfig::Tiny();
  SyntheticWorld world = GenerateWorld(config);
  EXPECT_EQ(world.dataset.num_users, config.num_users);
  EXPECT_EQ(world.dataset.num_items, config.num_items);
  EXPECT_EQ(world.dataset.groups.num_groups(), config.num_groups);
  EXPECT_EQ(world.user_vectors.rows(), config.num_users);
  EXPECT_EQ(world.user_vectors.cols(), config.latent_dim);
  EXPECT_EQ(world.item_vectors.rows(), config.num_items);
  EXPECT_EQ(world.user_expertise.rows(), config.num_users);
  EXPECT_EQ(world.user_expertise.cols(), config.num_topics);
  EXPECT_EQ(world.user_topic.size(), static_cast<size_t>(config.num_users));
  EXPECT_EQ(world.item_topic.size(), static_cast<size_t>(config.num_items));
}

TEST(SyntheticWorldTest, AllEdgesInRange) {
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::Tiny());
  for (const Edge& e : world.dataset.user_item) {
    EXPECT_GE(e.row, 0);
    EXPECT_LT(e.row, world.dataset.num_users);
    EXPECT_GE(e.item, 0);
    EXPECT_LT(e.item, world.dataset.num_items);
  }
  for (const Edge& e : world.dataset.group_item) {
    EXPECT_GE(e.row, 0);
    EXPECT_LT(e.row, world.dataset.groups.num_groups());
  }
}

TEST(SyntheticWorldTest, GroupSizesWithinBounds) {
  const SyntheticWorldConfig config = SyntheticWorldConfig::Tiny();
  SyntheticWorld world = GenerateWorld(config);
  for (GroupId g = 0; g < world.dataset.groups.num_groups(); ++g) {
    EXPECT_GE(world.dataset.groups.GroupSize(g), config.min_group_size);
    EXPECT_LE(world.dataset.groups.GroupSize(g), config.max_group_size);
  }
}

TEST(SyntheticWorldTest, StatsApproximateConfigTargets) {
  const SyntheticWorldConfig config = SyntheticWorldConfig::YelpLike();
  SyntheticWorld world = GenerateWorld(config);
  const DatasetStats stats = world.dataset.ComputeStats();
  EXPECT_NEAR(stats.avg_group_size, config.avg_group_size, 1.2);
  EXPECT_NEAR(stats.avg_friends_per_user, config.avg_friends_per_user, 4.0);
  // User interactions include the group-attendance echo, so the realized
  // mean sits near (not exactly at) the configured solo+echo target.
  EXPECT_GT(stats.avg_interactions_per_user, 6.0);
  EXPECT_LT(stats.avg_interactions_per_user, 25.0);
  EXPECT_GT(stats.avg_interactions_per_group, 1.0);
  EXPECT_LT(stats.avg_interactions_per_group, 2.5);
}

TEST(SyntheticWorldTest, GroupItemEchoedIntoMemberHistories) {
  // Every group interaction must appear in each member's user-item history
  // (the datasets' construction: a group activity IS each member attending).
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::Tiny());
  const InteractionMatrix ui = world.dataset.UserItemMatrix();
  for (const Edge& e : world.dataset.group_item) {
    for (UserId member : world.dataset.groups.Members(e.row)) {
      EXPECT_TRUE(ui.Has(member, e.item))
          << "group " << e.row << " item " << e.item << " member " << member;
    }
  }
}

TEST(SyntheticWorldTest, ExpertsAreMoreActive) {
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::YelpLike());
  const InteractionMatrix ui = world.dataset.UserItemMatrix();
  double expert_total = 0.0;
  double other_total = 0.0;
  int experts = 0;
  int others = 0;
  for (int u = 0; u < world.dataset.num_users; ++u) {
    if (world.user_is_expert[u]) {
      expert_total += ui.RowDegree(u);
      ++experts;
    } else {
      other_total += ui.RowDegree(u);
      ++others;
    }
  }
  ASSERT_GT(experts, 0);
  ASSERT_GT(others, 0);
  EXPECT_GT(expert_total / experts, other_total / others);
}

TEST(SyntheticWorldTest, ExpertiseBoostOnPrimaryTopicOnly) {
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::Tiny());
  for (int u = 0; u < world.dataset.num_users; ++u) {
    if (!world.user_is_expert[u]) continue;
    const int z = world.user_topic[u];
    EXPECT_GE(world.user_expertise.At(u, z), 0.8f);
    for (int k = 0; k < world.config.num_topics; ++k) {
      if (k != z) EXPECT_LE(world.user_expertise.At(u, k), 0.2f);
    }
  }
}

TEST(SyntheticWorldTest, GroupsAreSociallyConnectedMostly) {
  // Most groups should contain at least one social edge among members
  // (groups grow along the social graph).
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::YelpLike());
  int connected = 0;
  const int total = world.dataset.groups.num_groups();
  for (GroupId g = 0; g < total; ++g) {
    const auto& members = world.dataset.groups.Members(g);
    bool any = false;
    for (size_t i = 0; i < members.size() && !any; ++i)
      for (size_t j = i + 1; j < members.size() && !any; ++j)
        any = world.dataset.social.Connected(members[i], members[j]);
    connected += any;
  }
  EXPECT_GT(static_cast<double>(connected) / total, 0.5);
}

TEST(SyntheticWorldTest, PresetsHaveDistinctShapes) {
  const auto yelp = SyntheticWorldConfig::YelpLike();
  const auto douban = SyntheticWorldConfig::DoubanEventLike();
  EXPECT_NE(yelp.num_items, douban.num_items);
  EXPECT_LT(yelp.avg_group_size, douban.avg_group_size);
  EXPECT_NE(yelp.seed, douban.seed);
}

}  // namespace
}  // namespace groupsa::data
