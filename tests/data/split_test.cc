#include "data/split.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

EdgeList MakeDenseEdges(int rows, int items_per_row) {
  EdgeList edges;
  for (int r = 0; r < rows; ++r)
    for (int i = 0; i < items_per_row; ++i) edges.push_back({r, i});
  return edges;
}

TEST(SplitTest, PartitionIsExhaustiveAndDisjoint) {
  Rng rng(1);
  const EdgeList edges = MakeDenseEdges(20, 10);
  Split split = SplitEdges(edges, 0.2, 0.1, &rng);
  EXPECT_EQ(split.train.size() + split.validation.size() + split.test.size(),
            edges.size());
  std::set<std::pair<int, int>> seen;
  for (const auto& part : {split.train, split.validation, split.test}) {
    for (const Edge& e : part) {
      EXPECT_TRUE(seen.emplace(e.row, e.item).second)
          << "duplicate edge across parts";
    }
  }
}

TEST(SplitTest, ApproximateFractions) {
  Rng rng(2);
  const EdgeList edges = MakeDenseEdges(100, 10);
  Split split = SplitEdges(edges, 0.2, 0.1, &rng);
  EXPECT_NEAR(static_cast<double>(split.test.size()) / edges.size(), 0.2,
              0.03);
  EXPECT_NEAR(static_cast<double>(split.validation.size()) / edges.size(),
              0.08, 0.03);
}

TEST(SplitTest, EveryRowKeepsATrainInteraction) {
  Rng rng(3);
  EdgeList edges;
  for (int r = 0; r < 50; ++r)
    for (int i = 0; i < 2 + r % 3; ++i) edges.push_back({r, i});
  Split split = SplitEdges(edges, 0.5, 0.3, &rng);
  std::map<int, int> train_count;
  for (const Edge& e : split.train) ++train_count[e.row];
  for (int r = 0; r < 50; ++r) EXPECT_GE(train_count[r], 1) << "row " << r;
}

TEST(SplitTest, SingleInteractionRowStaysInTrain) {
  Rng rng(4);
  Split split = SplitEdges({{7, 3}}, 0.9, 0.5, &rng);
  ASSERT_EQ(split.train.size(), 1u);
  EXPECT_TRUE(split.test.empty());
  EXPECT_TRUE(split.validation.empty());
}

TEST(SplitTest, ZeroFractionsKeepAllInTrain) {
  Rng rng(5);
  const EdgeList edges = MakeDenseEdges(10, 5);
  Split split = SplitEdges(edges, 0.0, 0.0, &rng);
  EXPECT_EQ(split.train.size(), edges.size());
}

TEST(GlobalSplitTest, PartitionIsExhaustive) {
  Rng rng(6);
  const EdgeList edges = MakeDenseEdges(30, 4);
  Split split = GlobalSplitEdges(edges, 0.2, 0.1, &rng);
  EXPECT_EQ(split.train.size() + split.validation.size() + split.test.size(),
            edges.size());
}

TEST(GlobalSplitTest, ExactGlobalCounts) {
  Rng rng(7);
  const EdgeList edges = MakeDenseEdges(10, 10);  // 100 edges
  Split split = GlobalSplitEdges(edges, 0.2, 0.1, &rng);
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(split.validation.size(), 8u);
  EXPECT_EQ(split.train.size(), 72u);
}

TEST(GlobalSplitTest, SingleEdgeRowCanLandInTest) {
  // The OGR property: with a global split a one-interaction group may be
  // fully held out (cold group).
  Rng rng(8);
  EdgeList edges;
  for (int r = 0; r < 200; ++r) edges.push_back({r, r % 7});
  Split split = GlobalSplitEdges(edges, 0.5, 0.0, &rng);
  EXPECT_EQ(split.test.size(), 100u);
}

TEST(GlobalSplitTest, DeterministicGivenSeed) {
  const EdgeList edges = MakeDenseEdges(20, 5);
  Rng a(9);
  Rng b(9);
  Split sa = GlobalSplitEdges(edges, 0.3, 0.1, &a);
  Split sb = GlobalSplitEdges(edges, 0.3, 0.1, &b);
  ASSERT_EQ(sa.test.size(), sb.test.size());
  for (size_t i = 0; i < sa.test.size(); ++i)
    EXPECT_TRUE(sa.test[i] == sb.test[i]);
}

}  // namespace
}  // namespace groupsa::data
