#include "data/tfidf.h"

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

TEST(TfIdfTest, RanksRareItemsFirst) {
  // Item 0 is popular (3 users), item 1 rare (1 user): user 0 interacted
  // with both, so item 1 should rank first.
  InteractionMatrix ui(3, 2, {{0, 0}, {0, 1}, {1, 0}, {2, 0}});
  const auto top = TopItemsPerUser(ui, 2);
  ASSERT_EQ(top[0].size(), 2u);
  EXPECT_EQ(top[0][0], 1);
  EXPECT_EQ(top[0][1], 0);
}

TEST(TfIdfTest, TruncatesToTopH) {
  InteractionMatrix ui(1, 5, {{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto top = TopItemsPerUser(ui, 3);
  EXPECT_EQ(top[0].size(), 3u);
}

TEST(TfIdfTest, EmptyHistoryGivesEmptyList) {
  InteractionMatrix ui(2, 3, {{0, 1}});
  const auto top = TopItemsPerUser(ui, 4);
  EXPECT_FALSE(top[0].empty());
  EXPECT_TRUE(top[1].empty());
}

TEST(TfIdfTest, FriendsRankedByInverseDegree) {
  // User 0's friends: 1 (degree 3) and 2 (degree 1): low-degree friend 2 is
  // more distinctive and ranks first.
  SocialGraph g(5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}});
  const auto top = TopFriendsPerUser(g, 2);
  ASSERT_EQ(top[0].size(), 2u);
  EXPECT_EQ(top[0][0], 2);
  EXPECT_EQ(top[0][1], 1);
}

TEST(TfIdfTest, IsolatedUserGetsEmptyFriendList) {
  SocialGraph g(3, {{0, 1}});
  const auto top = TopFriendsPerUser(g, 3);
  EXPECT_TRUE(top[2].empty());
}

TEST(TfIdfTest, DeterministicTieBreakById) {
  // Two items of equal popularity: lower id first.
  InteractionMatrix ui(2, 3, {{0, 2}, {0, 1}, {1, 1}, {1, 2}});
  const auto top = TopItemsPerUser(ui, 2);
  EXPECT_EQ(top[0][0], 1);
  EXPECT_EQ(top[0][1], 2);
}

}  // namespace
}  // namespace groupsa::data
