#include "data/social_graph.h"

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

TEST(SocialGraphTest, SymmetrizesEdges) {
  SocialGraph g(4, {{0, 1}, {2, 3}});
  EXPECT_TRUE(g.Connected(0, 1));
  EXPECT_TRUE(g.Connected(1, 0));
  EXPECT_TRUE(g.Connected(3, 2));
  EXPECT_FALSE(g.Connected(0, 2));
}

TEST(SocialGraphTest, DropsSelfLoopsAndDuplicates) {
  SocialGraph g(3, {{0, 0}, {0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_FALSE(g.Connected(0, 0));
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(SocialGraphTest, NeighborsSorted) {
  SocialGraph g(5, {{2, 4}, {2, 0}, {2, 3}});
  const auto& n = g.Neighbors(2);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 0);
  EXPECT_EQ(n[1], 3);
  EXPECT_EQ(n[2], 4);
}

TEST(SocialGraphTest, AvgDegree) {
  SocialGraph g(4, {{0, 1}, {1, 2}});
  // Degrees: 1, 2, 1, 0 -> avg 1.
  EXPECT_DOUBLE_EQ(g.AvgDegree(), 1.0);
}

TEST(SocialGraphTest, IsolatedUser) {
  SocialGraph g(3, {{0, 1}});
  EXPECT_TRUE(g.Neighbors(2).empty());
  EXPECT_EQ(g.Degree(2), 0);
}

TEST(SocialGraphTest, EmptyGraph) {
  SocialGraph g;
  EXPECT_EQ(g.num_users(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.AvgDegree(), 0.0);
}

TEST(SocialGraphTest, CommonNeighborsCounts) {
  // 0 and 1 share neighbors 2, 3; user 4 isolated from them.
  SocialGraph g(5, {{0, 2}, {0, 3}, {1, 2}, {1, 3}, {0, 4}});
  EXPECT_EQ(g.CommonNeighbors(0, 1), 2);
  EXPECT_EQ(g.CommonNeighbors(0, 4), 0);
  EXPECT_EQ(g.CommonNeighbors(2, 3), 2);  // share 0 and 1
}

TEST(SocialGraphTest, JaccardCoefficient) {
  SocialGraph g(5, {{0, 2}, {0, 3}, {1, 2}, {1, 3}, {0, 4}});
  // N(0) = {2,3,4}, N(1) = {2,3}: common 2, union 3.
  EXPECT_DOUBLE_EQ(g.JaccardCoefficient(0, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.JaccardCoefficient(1, 0), 2.0 / 3.0);  // symmetric
}

TEST(SocialGraphTest, JaccardZeroForIsolatedPair) {
  SocialGraph g(3, {{0, 1}});
  EXPECT_DOUBLE_EQ(g.JaccardCoefficient(2, 2), 0.0);
}

TEST(SocialGraphTest, AdamicAdarDiscountsHighDegreeHubs) {
  // Pair (0,1) shares low-degree neighbor 2; pair (3,4) shares hub 5 with
  // high degree: the low-degree mutual friend should score higher.
  SocialGraph g(9, {{0, 2}, {1, 2},                    // via degree-2 node
                    {3, 5}, {4, 5}, {5, 6}, {5, 7},    // via degree-5 hub
                    {5, 8}});
  EXPECT_GT(g.AdamicAdar(0, 1), g.AdamicAdar(3, 4));
  EXPECT_GT(g.AdamicAdar(3, 4), 0.0);
}

}  // namespace
}  // namespace groupsa::data
