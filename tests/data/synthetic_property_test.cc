// Property-style sweeps over synthetic world configurations: invariants
// that must hold for any sane configuration, checked across a grid of
// (seed, scale, homophily) points.

#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace groupsa::data {
namespace {

struct WorldPoint {
  uint64_t seed;
  int num_users;
  int num_groups;
  double homophily;
  double expert_fraction;
};

class SyntheticWorldPropertyTest
    : public ::testing::TestWithParam<WorldPoint> {
 protected:
  static SyntheticWorldConfig ConfigFor(const WorldPoint& p) {
    SyntheticWorldConfig c = SyntheticWorldConfig::Tiny();
    c.seed = p.seed;
    c.num_users = p.num_users;
    c.num_groups = p.num_groups;
    c.homophily = p.homophily;
    c.expert_fraction = p.expert_fraction;
    return c;
  }
};

TEST_P(SyntheticWorldPropertyTest, AllIdsInRange) {
  const SyntheticWorld world = GenerateWorld(ConfigFor(GetParam()));
  for (const Edge& e : world.dataset.user_item) {
    ASSERT_GE(e.row, 0);
    ASSERT_LT(e.row, world.dataset.num_users);
    ASSERT_GE(e.item, 0);
    ASSERT_LT(e.item, world.dataset.num_items);
  }
  for (GroupId g = 0; g < world.dataset.groups.num_groups(); ++g) {
    for (UserId u : world.dataset.groups.Members(g)) {
      ASSERT_GE(u, 0);
      ASSERT_LT(u, world.dataset.num_users);
    }
  }
}

TEST_P(SyntheticWorldPropertyTest, NoDuplicateInteractionsPerRow) {
  const SyntheticWorld world = GenerateWorld(ConfigFor(GetParam()));
  std::set<std::pair<int32_t, ItemId>> seen;
  for (const Edge& e : world.dataset.user_item)
    ASSERT_TRUE(seen.emplace(e.row, e.item).second);
  seen.clear();
  for (const Edge& e : world.dataset.group_item)
    ASSERT_TRUE(seen.emplace(e.row, e.item).second);
}

TEST_P(SyntheticWorldPropertyTest, AttendanceEchoHolds) {
  const SyntheticWorld world = GenerateWorld(ConfigFor(GetParam()));
  const InteractionMatrix ui = world.dataset.UserItemMatrix();
  for (const Edge& e : world.dataset.group_item) {
    for (UserId member : world.dataset.groups.Members(e.row))
      ASSERT_TRUE(ui.Has(member, e.item));
  }
}

TEST_P(SyntheticWorldPropertyTest, GroupSizesWithinConfiguredBounds) {
  const SyntheticWorldConfig config = ConfigFor(GetParam());
  const SyntheticWorld world = GenerateWorld(config);
  for (GroupId g = 0; g < world.dataset.groups.num_groups(); ++g) {
    ASSERT_GE(world.dataset.groups.GroupSize(g), config.min_group_size);
    ASSERT_LE(world.dataset.groups.GroupSize(g), config.max_group_size);
  }
}

TEST_P(SyntheticWorldPropertyTest, EveryUserHasAtLeastOneInteraction) {
  const SyntheticWorld world = GenerateWorld(ConfigFor(GetParam()));
  const InteractionMatrix ui = world.dataset.UserItemMatrix();
  for (int u = 0; u < world.dataset.num_users; ++u)
    ASSERT_GE(ui.RowDegree(u), 1) << "user " << u;
}

TEST_P(SyntheticWorldPropertyTest, GenerationIsDeterministic) {
  const SyntheticWorldConfig config = ConfigFor(GetParam());
  const SyntheticWorld a = GenerateWorld(config);
  const SyntheticWorld b = GenerateWorld(config);
  ASSERT_EQ(a.dataset.user_item.size(), b.dataset.user_item.size());
  ASSERT_EQ(a.dataset.group_item.size(), b.dataset.group_item.size());
  ASSERT_EQ(a.dataset.social.num_edges(), b.dataset.social.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SyntheticWorldPropertyTest,
    ::testing::Values(WorldPoint{1, 80, 40, 0.8, 0.35},
                      WorldPoint{2, 150, 90, 0.5, 0.35},
                      WorldPoint{3, 150, 90, 1.0, 0.0},
                      WorldPoint{4, 300, 10, 0.0, 1.0},
                      WorldPoint{5, 60, 120, 0.9, 0.5}));

}  // namespace
}  // namespace groupsa::data
