#include "data/io.h"

#include <sys/stat.h>

#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace groupsa::data {
namespace {

// A minimal valid on-disk dataset (3 users, 4 items, 2 groups) that corrupt-
// fixture tests mutate one file at a time.
class CorruptFixtureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::string(::testing::TempDir()) + "/corrupt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::mkdir(dir_.c_str(), 0755);
    WriteTsv("meta.tsv", "name\ttiny\nnum_users\t3\nnum_items\t4\n");
    WriteTsv("social.tsv", "0\t1\n1\t2\n");
    WriteTsv("groups.tsv", "0\t0,1\n1\t1,2\n");
    WriteTsv("user_item.tsv", "0\t0\n1\t3\n2\t2\n");
    WriteTsv("group_item.tsv", "0\t1\n1\t2\n");
  }

  void WriteTsv(const std::string& name, const std::string& content) {
    std::ofstream out(dir_ + "/" + name);
    ASSERT_TRUE(out.is_open());
    out << content;
  }

  // Loads the directory and expects an error whose message carries the file
  // name, the 1-based line number and the given detail fragment.
  void ExpectLoadError(const std::string& file, int line,
                       const std::string& detail) {
    Dataset dataset;
    const Status s = LoadDataset(dir_, &dataset);
    ASSERT_FALSE(s.ok()) << file << " should have been rejected";
    const std::string location =
        dir_ + "/" + file + ":" + std::to_string(line);
    EXPECT_NE(s.message().find(location), std::string::npos) << s.message();
    EXPECT_NE(s.message().find(detail), std::string::npos) << s.message();
  }

  std::string dir_;
};

TEST_F(CorruptFixtureTest, BaselineFixtureLoads) {
  Dataset dataset;
  ASSERT_TRUE(LoadDataset(dir_, &dataset).ok());
  EXPECT_EQ(dataset.num_users, 3);
  EXPECT_EQ(dataset.num_items, 4);
  EXPECT_EQ(dataset.groups.num_groups(), 2);
  EXPECT_EQ(dataset.user_item.size(), 3u);
}

TEST_F(CorruptFixtureTest, MalformedEdgeLineNamesFileAndLine) {
  WriteTsv("user_item.tsv", "0\t0\n1\tbanana\n");
  ExpectLoadError("user_item.tsv", 2, "malformed edge line");
}

TEST_F(CorruptFixtureTest, MissingColumnRejected) {
  WriteTsv("user_item.tsv", "0\t0\n17\n");
  ExpectLoadError("user_item.tsv", 2, "malformed edge line");
}

TEST_F(CorruptFixtureTest, NegativeUserIdRejected) {
  WriteTsv("user_item.tsv", "-1\t0\n");
  ExpectLoadError("user_item.tsv", 1, "user id -1 out of range [0, 3)");
}

TEST_F(CorruptFixtureTest, OutOfRangeItemIdRejected) {
  WriteTsv("user_item.tsv", "0\t0\n0\t4\n");
  ExpectLoadError("user_item.tsv", 2, "item id 4 out of range [0, 4)");
}

TEST_F(CorruptFixtureTest, OutOfRangeGroupRowRejected) {
  WriteTsv("group_item.tsv", "2\t0\n");
  ExpectLoadError("group_item.tsv", 1, "group id 2 out of range [0, 2)");
}

TEST_F(CorruptFixtureTest, IntOverflowRejected) {
  WriteTsv("user_item.tsv", "99999999999999999999\t0\n");
  ExpectLoadError("user_item.tsv", 1, "malformed edge line");
}

TEST_F(CorruptFixtureTest, OutOfRangeSocialUserRejected) {
  WriteTsv("social.tsv", "0\t1\n0\t3\n");
  ExpectLoadError("social.tsv", 2, "user id 3 out of range [0, 3)");
}

TEST_F(CorruptFixtureTest, DuplicateGroupIdRejected) {
  WriteTsv("groups.tsv", "0\t0,1\n0\t1,2\n");
  ExpectLoadError("groups.tsv", 2, "group id 0 out of order");
}

TEST_F(CorruptFixtureTest, NonSequentialGroupIdRejected) {
  WriteTsv("groups.tsv", "0\t0,1\n2\t1,2\n");
  ExpectLoadError("groups.tsv", 2, "group id 2 out of order (expected 1");
}

TEST_F(CorruptFixtureTest, MalformedMemberIdRejected) {
  WriteTsv("groups.tsv", "0\t0,x\n");
  ExpectLoadError("groups.tsv", 1, "malformed member id: 'x'");
}

TEST_F(CorruptFixtureTest, OutOfRangeMemberIdRejected) {
  WriteTsv("groups.tsv", "0\t0,7\n");
  ExpectLoadError("groups.tsv", 1, "member id 7 out of range [0, 3)");
}

TEST_F(CorruptFixtureTest, EmptyGroupRejected) {
  WriteTsv("groups.tsv", "0\t0,1\n1\t,\n");
  ExpectLoadError("groups.tsv", 2, "empty group 1");
}

TEST_F(CorruptFixtureTest, MalformedMetaValueRejected) {
  WriteTsv("meta.tsv", "name\ttiny\nnum_users\tmany\nnum_items\t4\n");
  ExpectLoadError("meta.tsv", 2, "malformed num_users value: 'many'");
}

TEST_F(CorruptFixtureTest, MissingMetaCountsRejected) {
  WriteTsv("meta.tsv", "name\ttiny\n");
  Dataset dataset;
  const Status s = LoadDataset(dir_, &dataset);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing counts"), std::string::npos);
}

TEST_F(CorruptFixtureTest, NegativeMetaCountRejected) {
  WriteTsv("meta.tsv", "name\ttiny\nnum_users\t-3\nnum_items\t4\n");
  Dataset dataset;
  EXPECT_FALSE(LoadDataset(dir_, &dataset).ok());
}

TEST(DataIoTest, SaveLoadRoundTrip) {
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::Tiny());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveDataset(world.dataset, dir).ok());

  Dataset loaded;
  ASSERT_TRUE(LoadDataset(dir, &loaded).ok());
  EXPECT_EQ(loaded.name, world.dataset.name);
  EXPECT_EQ(loaded.num_users, world.dataset.num_users);
  EXPECT_EQ(loaded.num_items, world.dataset.num_items);
  ASSERT_EQ(loaded.user_item.size(), world.dataset.user_item.size());
  ASSERT_EQ(loaded.group_item.size(), world.dataset.group_item.size());
  EXPECT_EQ(loaded.social.num_edges(), world.dataset.social.num_edges());
  EXPECT_EQ(loaded.groups.num_groups(), world.dataset.groups.num_groups());
  for (GroupId g = 0; g < loaded.groups.num_groups(); ++g)
    EXPECT_EQ(loaded.groups.Members(g), world.dataset.groups.Members(g));
  // Stats identical after round trip.
  const DatasetStats a = world.dataset.ComputeStats();
  const DatasetStats b = loaded.ComputeStats();
  EXPECT_DOUBLE_EQ(a.avg_interactions_per_user, b.avg_interactions_per_user);
  EXPECT_DOUBLE_EQ(a.avg_friends_per_user, b.avg_friends_per_user);
}

TEST(DataIoTest, LoadFailsOnMissingDirectory) {
  Dataset dataset;
  EXPECT_FALSE(LoadDataset("/nonexistent/path/xyz", &dataset).ok());
}

TEST(DataIoTest, SaveFailsOnUnwritableDirectory) {
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::Tiny());
  EXPECT_FALSE(SaveDataset(world.dataset, "/nonexistent/path/xyz").ok());
}

}  // namespace
}  // namespace groupsa::data
