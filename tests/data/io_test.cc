#include "data/io.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace groupsa::data {
namespace {

TEST(DataIoTest, SaveLoadRoundTrip) {
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::Tiny());
  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(SaveDataset(world.dataset, dir).ok());

  Dataset loaded;
  ASSERT_TRUE(LoadDataset(dir, &loaded).ok());
  EXPECT_EQ(loaded.name, world.dataset.name);
  EXPECT_EQ(loaded.num_users, world.dataset.num_users);
  EXPECT_EQ(loaded.num_items, world.dataset.num_items);
  ASSERT_EQ(loaded.user_item.size(), world.dataset.user_item.size());
  ASSERT_EQ(loaded.group_item.size(), world.dataset.group_item.size());
  EXPECT_EQ(loaded.social.num_edges(), world.dataset.social.num_edges());
  EXPECT_EQ(loaded.groups.num_groups(), world.dataset.groups.num_groups());
  for (GroupId g = 0; g < loaded.groups.num_groups(); ++g)
    EXPECT_EQ(loaded.groups.Members(g), world.dataset.groups.Members(g));
  // Stats identical after round trip.
  const DatasetStats a = world.dataset.ComputeStats();
  const DatasetStats b = loaded.ComputeStats();
  EXPECT_DOUBLE_EQ(a.avg_interactions_per_user, b.avg_interactions_per_user);
  EXPECT_DOUBLE_EQ(a.avg_friends_per_user, b.avg_friends_per_user);
}

TEST(DataIoTest, LoadFailsOnMissingDirectory) {
  Dataset dataset;
  EXPECT_FALSE(LoadDataset("/nonexistent/path/xyz", &dataset).ok());
}

TEST(DataIoTest, SaveFailsOnUnwritableDirectory) {
  SyntheticWorld world = GenerateWorld(SyntheticWorldConfig::Tiny());
  EXPECT_FALSE(SaveDataset(world.dataset, "/nonexistent/path/xyz").ok());
}

}  // namespace
}  // namespace groupsa::data
