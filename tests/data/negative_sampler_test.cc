#include "data/negative_sampler.h"

#include <set>

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

TEST(NegativeSamplerTest, NeverReturnsObservedItem) {
  InteractionMatrix observed(2, 10, {{0, 1}, {0, 3}, {0, 5}, {1, 0}});
  NegativeSampler sampler(&observed);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const ItemId neg = sampler.Sample(0, &rng);
    EXPECT_FALSE(observed.Has(0, neg));
  }
}

TEST(NegativeSamplerTest, WorksWhenOnlyOneItemFree) {
  InteractionMatrix observed(1, 3, {{0, 0}, {0, 2}});
  NegativeSampler sampler(&observed);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sampler.Sample(0, &rng), 1);
}

TEST(NegativeSamplerTest, SampleManyCount) {
  InteractionMatrix observed(1, 100, {{0, 50}});
  NegativeSampler sampler(&observed);
  Rng rng(3);
  const auto negs = sampler.SampleMany(0, 7, &rng);
  EXPECT_EQ(negs.size(), 7u);
  for (ItemId n : negs) EXPECT_NE(n, 50);
}

TEST(NegativeSamplerTest, CoversItemSpace) {
  InteractionMatrix observed(1, 10, {});
  NegativeSampler sampler(&observed);
  Rng rng(4);
  std::set<ItemId> seen;
  for (int i = 0; i < 500; ++i) seen.insert(sampler.Sample(0, &rng));
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace groupsa::data
