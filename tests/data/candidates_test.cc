#include "data/candidates.h"

#include <set>

#include <gtest/gtest.h>

namespace groupsa::data {
namespace {

TEST(CandidatesTest, DistinctAndUnobserved) {
  InteractionMatrix observed(1, 200, {{0, 5}, {0, 10}, {0, 15}});
  Rng rng(1);
  const auto candidates = SampleCandidates(observed, 0, 100, &rng);
  EXPECT_EQ(candidates.size(), 100u);
  std::set<ItemId> unique(candidates.begin(), candidates.end());
  EXPECT_EQ(unique.size(), 100u);
  for (ItemId c : candidates) EXPECT_FALSE(observed.Has(0, c));
}

TEST(CandidatesTest, ExactlyFillsFreePool) {
  InteractionMatrix observed(1, 10, {{0, 0}, {0, 1}});
  Rng rng(2);
  const auto candidates = SampleCandidates(observed, 0, 8, &rng);
  std::set<ItemId> unique(candidates.begin(), candidates.end());
  EXPECT_EQ(unique.size(), 8u);
}

TEST(CandidatesTest, DeterministicGivenSeed) {
  InteractionMatrix observed(1, 50, {{0, 3}});
  Rng a(3);
  Rng b(3);
  EXPECT_EQ(SampleCandidates(observed, 0, 10, &a),
            SampleCandidates(observed, 0, 10, &b));
}

}  // namespace
}  // namespace groupsa::data
