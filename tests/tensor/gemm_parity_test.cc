// Bit-exact parity of the row-tiled parallel Gemm against the serial
// reference kernel. Every output row of the parallel path runs the same
// inner-loop instruction sequence as GemmSerial, so the comparison is exact
// (0 ULP), not approximate.

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/ops.h"

namespace groupsa::tensor {
namespace {

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillGaussian(&rng, 0.0f, 1.0f);
  return m;
}

// Bitwise comparison: float equality would accept -0.0f == 0.0f and reject
// matching NaNs; memcmp on the raw payload is the real 0-ULP check.
void ExpectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * a.rows() * a.cols()),
            0);
}

struct GemmCase {
  int m, k, n;
  bool transpose_a, transpose_b;
  float alpha;
  bool accumulate;
};

// Runs one Gemm configuration through the serial kernel and through the
// public Gemm at the given pool width, and checks bit parity.
void CheckParity(const GemmCase& c, int threads) {
  const Matrix a = c.transpose_a ? RandomMatrix(c.k, c.m, 101)
                                 : RandomMatrix(c.m, c.k, 101);
  const Matrix b = c.transpose_b ? RandomMatrix(c.n, c.k, 202)
                                 : RandomMatrix(c.k, c.n, 202);
  Matrix expected;
  Matrix actual;
  if (c.accumulate) {
    const Matrix init = RandomMatrix(c.m, c.n, 303);
    expected = init;
    actual = init;
  }
  GemmSerial(a, c.transpose_a, b, c.transpose_b, c.alpha, &expected,
             c.accumulate);

  parallel::SetGlobalThreads(threads);
  Gemm(a, c.transpose_a, b, c.transpose_b, c.alpha, &actual, c.accumulate);
  parallel::SetGlobalThreads(1);

  ExpectBitIdentical(expected, actual);
}

TEST(GemmParityTest, TransposeFlagCombinationsAtFourThreads) {
  // 96x80x112 is above the parallel cutoff (96*80*112 ≈ 860k > 2^18) with
  // deliberately unequal, non-power-of-two dimensions.
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      CheckParity({96, 80, 112, ta, tb, 1.0f, false}, /*threads=*/4);
    }
  }
}

TEST(GemmParityTest, OddShapes) {
  const std::vector<GemmCase> cases = {
      {1, 257, 131, false, false, 1.0f, false},   // single output row
      {131, 1, 257, false, false, 1.0f, false},   // inner dim 1
      {257, 131, 1, false, false, 1.0f, false},   // single output column
      {67, 129, 255, false, true, 1.0f, false},   // odd everything
      {255, 67, 129, true, false, 1.0f, false},
      {129, 255, 67, true, true, 1.0f, false},
  };
  for (const GemmCase& c : cases) CheckParity(c, /*threads=*/4);
}

TEST(GemmParityTest, AlphaAndAccumulate) {
  CheckParity({96, 96, 96, false, false, 0.37f, false}, /*threads=*/4);
  CheckParity({96, 96, 96, false, false, 1.0f, true}, /*threads=*/4);
  CheckParity({96, 96, 96, true, false, -2.5f, true}, /*threads=*/4);
}

TEST(GemmParityTest, ThreadCountInvariance) {
  // The tiled kernel must match serial at every pool width, including widths
  // far above the chunk count.
  for (int threads : {1, 2, 3, 4, 8}) {
    CheckParity({80, 90, 100, false, false, 1.0f, false}, threads);
    CheckParity({80, 90, 100, true, true, 0.5f, true}, threads);
  }
}

TEST(GemmParityTest, BelowCutoffStillMatches) {
  // Small products take the serial fast path inside Gemm; parity is trivially
  // required there too.
  CheckParity({8, 8, 8, false, true, 1.0f, false}, /*threads=*/4);
  CheckParity({3, 5, 7, true, false, 2.0f, true}, /*threads=*/4);
}

}  // namespace
}  // namespace groupsa::tensor
