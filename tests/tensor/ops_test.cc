#include "tensor/ops.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace groupsa::tensor {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// Reference O(n^3) matmul for checking Gemm against.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < b.cols(); ++j)
      for (int k = 0; k < a.cols(); ++k)
        out.At(i, j) += a.At(i, k) * b.At(k, j);
  return out;
}

class GemmTransposeTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTransposeTest, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(5);
  Matrix a_base(3, 4);
  Matrix b_base(4, 5);
  a_base.FillGaussian(&rng, 0.0f, 1.0f);
  b_base.FillGaussian(&rng, 0.0f, 1.0f);
  const Matrix a = ta ? Transpose(a_base) : a_base;
  const Matrix b = tb ? Transpose(b_base) : b_base;
  Matrix out;
  Gemm(a, ta, b, tb, 1.0f, &out);
  EXPECT_TRUE(AllClose(out, NaiveMatMul(a_base, b_base), 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(AllTransposeCombos, GemmTransposeTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

TEST(GemmTest, AlphaScales) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3}, {4}});
  Matrix out;
  Gemm(a, false, b, false, 2.0f, &out);
  EXPECT_FLOAT_EQ(out.At(0, 0), 22.0f);
}

TEST(GemmTest, AccumulateAddsIntoExisting) {
  Matrix a = Matrix::FromRows({{1, 0}, {0, 1}});
  Matrix b = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix out(2, 2, 10.0f);
  Gemm(a, false, b, false, 1.0f, &out, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(out.At(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(out.At(1, 1), 14.0f);
}

TEST(MatMulTest, IdentityPreserves) {
  Matrix eye = Matrix::FromRows({{1, 0}, {0, 1}});
  Matrix x = Matrix::FromRows({{5, 6}, {7, 8}});
  EXPECT_TRUE(AllClose(MatMul(eye, x), x));
}

TEST(TransposeTest, TransposesAndRoundTrips) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = Transpose(m);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.At(2, 1), 6.0f);
  EXPECT_TRUE(AllClose(Transpose(t), m));
}

TEST(HadamardTest, ElementwiseProduct) {
  Matrix a = Matrix::FromRows({{2, 3}});
  Matrix b = Matrix::FromRows({{4, -1}});
  EXPECT_TRUE(AllClose(Hadamard(a, b), Matrix::FromRows({{8, -3}})));
}

TEST(AddRowBroadcastTest, AddsToEveryRow) {
  Matrix a = Matrix::FromRows({{1, 1}, {2, 2}});
  Matrix bias = Matrix::FromRows({{10, 20}});
  AddRowBroadcastInPlace(&a, bias);
  EXPECT_TRUE(AllClose(a, Matrix::FromRows({{11, 21}, {12, 22}})));
}

TEST(SumRowsTest, SumsColumns) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_TRUE(AllClose(SumRows(a), Matrix::FromRows({{9, 12}})));
}

TEST(SoftmaxRowsTest, RowsSumToOne) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {-1, 0, 1}});
  SoftmaxRowsInPlace(&m);
  for (int r = 0; r < 2; ++r) {
    float total = 0.0f;
    for (int c = 0; c < 3; ++c) {
      total += m.At(r, c);
      EXPECT_GT(m.At(r, c), 0.0f);
    }
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxRowsTest, MonotoneInLogits) {
  Matrix m = Matrix::FromRows({{1, 3, 2}});
  SoftmaxRowsInPlace(&m);
  EXPECT_GT(m.At(0, 1), m.At(0, 2));
  EXPECT_GT(m.At(0, 2), m.At(0, 0));
}

TEST(SoftmaxRowsTest, NumericallyStableForLargeLogits) {
  Matrix m = Matrix::FromRows({{1000.0f, 1000.0f}});
  SoftmaxRowsInPlace(&m);
  EXPECT_NEAR(m.At(0, 0), 0.5f, 1e-5f);
}

TEST(SoftmaxRowsTest, NegInfMaskedToExactZero) {
  Matrix m = Matrix::FromRows({{0.0f, -kInf, 0.0f}});
  SoftmaxRowsInPlace(&m);
  EXPECT_EQ(m.At(0, 1), 0.0f);
  EXPECT_NEAR(m.At(0, 0), 0.5f, 1e-5f);
}

TEST(SoftmaxRowsTest, SingleEntryRowIsOne) {
  Matrix m = Matrix::FromRows({{-3.7f}});
  SoftmaxRowsInPlace(&m);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
}

TEST(LogSumExpRowsTest, MatchesDirectComputation) {
  Matrix m = Matrix::FromRows({{0.0f, 1.0f, 2.0f}});
  Matrix lse = LogSumExpRows(m);
  const float expected =
      std::log(std::exp(0.0f) + std::exp(1.0f) + std::exp(2.0f));
  EXPECT_NEAR(lse.At(0, 0), expected, 1e-5f);
}

TEST(LogSumExpRowsTest, StableForLargeValues) {
  Matrix m = Matrix::FromRows({{500.0f, 500.0f}});
  Matrix lse = LogSumExpRows(m);
  EXPECT_NEAR(lse.At(0, 0), 500.0f + std::log(2.0f), 1e-3f);
}

TEST(DotTest, FlattenedDotProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{1, 1}, {1, 1}});
  EXPECT_FLOAT_EQ(Dot(a, b), 10.0f);
}

TEST(ConcatColsTest, JoinsHorizontally) {
  Matrix a = Matrix::FromRows({{1}, {2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix joined = ConcatCols({&a, &b});
  EXPECT_TRUE(AllClose(joined, Matrix::FromRows({{1, 3, 4}, {2, 5, 6}})));
}

TEST(ConcatRowsTest, JoinsVertically) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 4}, {5, 6}});
  Matrix joined = ConcatRows({&a, &b});
  EXPECT_TRUE(AllClose(joined, Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}})));
}

TEST(GatherRowsTest, GathersWithRepeats) {
  Matrix table = Matrix::FromRows({{1, 1}, {2, 2}, {3, 3}});
  Matrix out = GatherRows(table, {2, 0, 2});
  EXPECT_TRUE(AllClose(out, Matrix::FromRows({{3, 3}, {1, 1}, {3, 3}})));
}

TEST(GatherRowsTest, EmptyIds) {
  Matrix table(3, 2, 1.0f);
  Matrix out = GatherRows(table, {});
  EXPECT_EQ(out.rows(), 0);
  EXPECT_EQ(out.cols(), 2);
}

TEST(DotTest, RowViewOverloadMatchesMatrixOverload) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix b = Matrix::FromRows({{7, 8, 9}, {1, 0, 2}});
  EXPECT_FLOAT_EQ(Dot(a.RowAt(1), b.RowAt(0)), 122.0f);
  for (int r = 0; r < a.rows(); ++r)
    EXPECT_EQ(Dot(a.RowAt(r), b.RowAt(r)), Dot(a.Row(r), b.Row(r)));
}

// The *Into destination kernels back the value-returning twins, which are
// now thin wrappers; these tests pin the reuse contract — a dirty,
// differently-shaped destination is reshaped and fully overwritten without
// reallocating when capacity suffices.
TEST(IntoKernelsTest, ReuseDirtyDestinationBitExactly) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix b = Matrix::FromRows({{2, 2, 2}, {3, 3, 3}});
  Matrix dirty(5, 5, 99.0f);
  const float* storage = dirty.data();

  TransposeInto(a, &dirty);
  EXPECT_TRUE(AllClose(dirty, Transpose(a)));
  EXPECT_EQ(dirty.data(), storage);

  HadamardInto(a, b, &dirty);
  EXPECT_TRUE(AllClose(dirty, Hadamard(a, b)));

  SumRowsInto(a, &dirty);
  EXPECT_TRUE(AllClose(dirty, SumRows(a)));

  GatherRowsInto(a, {1, 0, 1}, &dirty);
  EXPECT_TRUE(AllClose(dirty, GatherRows(a, {1, 0, 1})));

  ConcatColsInto({&a, &b}, &dirty);
  EXPECT_TRUE(AllClose(dirty, ConcatCols({&a, &b})));

  ConcatRowsInto({&a, &b}, &dirty);
  EXPECT_TRUE(AllClose(dirty, ConcatRows({&a, &b})));
}

TEST(IntoKernelsTest, SumRowsIntoZeroesItsAccumulator) {
  // SumRowsInto accumulates into its destination, so the zero-fill on
  // reshape (and on same-shape reuse) is load-bearing.
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix out(1, 2, 50.0f);  // same shape, dirty contents
  SumRowsInto(a, &out);
  EXPECT_TRUE(AllClose(out, Matrix::FromRows({{4, 6}})));
}

}  // namespace
}  // namespace groupsa::tensor
