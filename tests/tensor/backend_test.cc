// Cross-backend bit-identity: every kernel backend compiled into this
// binary (scalar, and avx2/avx512 when the toolchain provided them) must
// return byte-identical results for every kernel in the dispatch table.
// This is the gate behind the contract in tensor/backend.h — a backend
// whose vectorization changed any accumulation order fails here long
// before it could corrupt a training run.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/backend.h"
#include "tensor/ops.h"

namespace groupsa::tensor {
namespace {

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  m.FillGaussian(&rng, 0.0f, 1.0f);
  return m;
}

// Bitwise comparison — the backend contract is 0 ULP, not approximate.
void ExpectBitIdentical(const Matrix& a, const Matrix& b,
                        const std::string& backend) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.rows()) *
                            static_cast<size_t>(a.cols())),
            0)
      << "backend " << backend << " diverged from scalar";
}

std::vector<const KernelBackend*> RunnableBackends() {
  std::vector<const KernelBackend*> runnable;
  for (const KernelBackend* b : CompiledBackends())
    if (b->runnable()) runnable.push_back(b);
  return runnable;
}

TEST(KernelBackendTest, ScalarIsAlwaysCompiledAndRunnable) {
  const std::vector<const KernelBackend*>& all = CompiledBackends();
  ASSERT_FALSE(all.empty());
  EXPECT_STREQ(all[0]->name, "scalar");
  EXPECT_TRUE(all[0]->runnable());
  EXPECT_NE(DetectedCpuFeatures().find("sse2"), std::string::npos);
}

TEST(KernelBackendTest, SelectByNameRoundTripsAndRejectsUnknown) {
  const std::string before = ActiveBackendName();
  for (const KernelBackend* b : RunnableBackends()) {
    ASSERT_TRUE(SelectBackendByName(b->name));
    EXPECT_STREQ(ActiveBackendName(), b->name);
  }
  EXPECT_FALSE(SelectBackendByName("sse9"));
  ASSERT_TRUE(SelectBackendByName(before));
  SetBackendForTest(nullptr);
}

struct GemmCase {
  int m, k, n;
  bool transpose_a, transpose_b;
  float alpha;
  bool accumulate;
};

// Runs one configuration through every compiled-and-runnable backend's
// gemm_rows and checks bit parity against the scalar backend.
void CheckGemmParity(const GemmCase& c) {
  const std::vector<const KernelBackend*> backends = RunnableBackends();
  const Matrix a = c.transpose_a ? RandomMatrix(c.k, c.m, 11)
                                 : RandomMatrix(c.m, c.k, 11);
  const Matrix b = c.transpose_b ? RandomMatrix(c.n, c.k, 22)
                                 : RandomMatrix(c.k, c.n, 22);
  const Matrix init = RandomMatrix(c.m, c.n, 33);
  Matrix reference;
  for (const KernelBackend* backend : backends) {
    Matrix out(c.m, c.n);
    if (c.accumulate) out = init;
    backend->gemm_rows(a, c.transpose_a, b, c.transpose_b, c.alpha, &out,
                       c.k, c.n, 0, c.m);
    if (backend == backends.front()) {
      reference = out;
      continue;
    }
    ExpectBitIdentical(reference, out, backend->name);
  }
}

TEST(KernelBackendTest, GemmParityAcrossBackends) {
  const std::vector<GemmCase> cases = {
      {96, 80, 112, false, false, 1.0f, false},
      {96, 80, 112, false, true, 1.0f, false},
      {96, 80, 112, true, false, 1.0f, false},
      {96, 80, 112, true, true, 1.0f, false},
      {67, 129, 255, false, false, 0.37f, true},  // odd dims + accumulate
      {129, 63, 1, false, false, 1.0f, false},    // n == 1 eight-chain path
      {5, 63, 1, false, false, 1.0f, false},      // n == 1 remainder rows
      {33, 17, 32, false, false, 1.0f, false},    // exact col tile
      {33, 17, 48, false, false, 1.0f, true},     // 32 + 16 tail
      {33, 17, 41, true, false, -2.5f, false},    // runtime-width tail
      {3, 5, 7, false, true, 2.0f, true},
  };
  for (const GemmCase& c : cases) CheckGemmParity(c);
}

TEST(KernelBackendTest, GemmSerialRoutesThroughForcedBackend) {
  // End-to-end through the ops.cc entry points: forcing each backend must
  // not change a single bit of GemmSerial or the parallel Gemm.
  const Matrix a = RandomMatrix(96, 80, 44);
  const Matrix b = RandomMatrix(80, 112, 55);
  Matrix reference;
  GemmSerial(a, false, b, false, 1.0f, &reference);
  for (const KernelBackend* backend : RunnableBackends()) {
    SetBackendForTest(backend);
    Matrix serial;
    GemmSerial(a, false, b, false, 1.0f, &serial);
    ExpectBitIdentical(reference, serial, backend->name);
    parallel::SetGlobalThreads(4);
    Matrix parallel_out;
    Gemm(a, false, b, false, 1.0f, &parallel_out);
    parallel::SetGlobalThreads(1);
    ExpectBitIdentical(reference, parallel_out, backend->name);
  }
  SetBackendForTest(nullptr);
}

// Attention-logit parity: random prefix/addend structure with a ragged
// nonzero list per member, exercised at the fixed widths (32, 64) and a
// runtime width.
void CheckAttentionParity(int c, int l, int h, bool has_hb, bool has_ob) {
  const std::vector<const KernelBackend*> backends = RunnableBackends();
  const int num_rows = c + 3;  // prefix rows indexed via ids
  const Matrix prefix = RandomMatrix(num_rows, h, 66);
  const Matrix addends = RandomMatrix(l + 2, h, 77);
  const Matrix hb_row = RandomMatrix(1, h, 88);
  const Matrix wout_row = RandomMatrix(1, h, 99);
  std::vector<int> ids(static_cast<size_t>(c));
  for (int t = 0; t < c; ++t) ids[static_cast<size_t>(t)] = (t * 7 + 3) % num_rows;
  // Member i adds rows {i, i+1, ...} of `addends`, a ragged prefix list.
  std::vector<int> nz;
  std::vector<int> nz_begin{0};
  for (int i = 0; i < l; ++i) {
    for (int j = 0; j <= i % 3; ++j) nz.push_back((i + j) % (l + 2));
    nz_begin.push_back(static_cast<int>(nz.size()));
  }
  Matrix reference;
  for (const KernelBackend* backend : backends) {
    Matrix out(c, l);
    backend->attention_logits(prefix, ids.data(), c, l, h, addends, nz,
                              nz_begin, has_hb ? hb_row.data() : nullptr,
                              wout_row.data(), has_ob, has_ob ? 0.125f : 0.0f,
                              &out);
    if (backend == backends.front()) {
      reference = out;
      continue;
    }
    ExpectBitIdentical(reference, out, backend->name);
  }
}

TEST(KernelBackendTest, AttentionLogitParityAcrossBackends) {
  CheckAttentionParity(/*c=*/23, /*l=*/9, /*h=*/32, true, true);   // tile + tail
  CheckAttentionParity(/*c=*/16, /*l=*/5, /*h=*/64, false, true);  // wide fixed
  CheckAttentionParity(/*c=*/7, /*l=*/4, /*h=*/17, true, false);   // runtime h
  CheckAttentionParity(/*c=*/3, /*l=*/1, /*h=*/32, false, false);  // below tile
}

TEST(KernelBackendTest, Int8DotParityAndExactness) {
  const int d = 32;
  const int rows = 41;
  Rng rng(123);
  std::vector<int8_t> q(static_cast<size_t>(d));
  std::vector<int8_t> table(static_cast<size_t>(rows * d));
  for (int8_t& v : q)
    v = static_cast<int8_t>(static_cast<int>(rng.NextU64() % 255) - 127);
  for (int8_t& v : table)
    v = static_cast<int8_t>(static_cast<int>(rng.NextU64() % 255) - 127);
  std::vector<int> ids{0, 5, 40, 7, 7, 13};
  // Naive reference: integer arithmetic, so exact equality is required of
  // every backend (not merely parity).
  const auto naive = [&](int row) {
    int32_t acc = 0;
    for (int j = 0; j < d; ++j)
      acc += static_cast<int32_t>(q[static_cast<size_t>(j)]) *
             static_cast<int32_t>(table[static_cast<size_t>(row * d + j)]);
    return acc;
  };
  for (const KernelBackend* backend : RunnableBackends()) {
    std::vector<int32_t> out(ids.size());
    backend->dot_i8_rows(q.data(), table.data(), ids.data(),
                         static_cast<int>(ids.size()), d, out.data());
    for (size_t r = 0; r < ids.size(); ++r)
      EXPECT_EQ(out[r], naive(ids[r])) << backend->name << " row " << r;
    // nullptr ids: identity row mapping.
    std::vector<int32_t> seq(static_cast<size_t>(rows));
    backend->dot_i8_rows(q.data(), table.data(), nullptr, rows, d,
                         seq.data());
    for (int r = 0; r < rows; ++r)
      EXPECT_EQ(seq[static_cast<size_t>(r)], naive(r)) << backend->name;
  }
}

}  // namespace
}  // namespace groupsa::tensor
