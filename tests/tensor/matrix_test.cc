#include "tensor/matrix.h"

#include <gtest/gtest.h>

namespace groupsa::tensor {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ConstructorZeroInitializes) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (int r = 0; r < 3; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m.At(r, c), 0.0f);
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 3.5f);
  EXPECT_EQ(m.At(1, 1), 3.5f);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.At(0, 2), 3.0f);
  EXPECT_EQ(m.At(1, 0), 4.0f);
}

TEST(MatrixTest, RowVector) {
  Matrix v = Matrix::RowVector({7, 8});
  EXPECT_EQ(v.rows(), 1);
  EXPECT_EQ(v.cols(), 2);
  EXPECT_EQ(v.At(0, 1), 8.0f);
}

TEST(MatrixTest, AtReadWrite) {
  Matrix m(2, 2);
  m.At(0, 1) = 5.0f;
  EXPECT_EQ(m(0, 1), 5.0f);
  m(1, 0) = -2.0f;
  EXPECT_EQ(m.At(1, 0), -2.0f);
}

TEST(MatrixTest, RowMajorLayout) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const float* data = m.data();
  EXPECT_EQ(data[0], 1.0f);
  EXPECT_EQ(data[1], 2.0f);
  EXPECT_EQ(data[2], 3.0f);
  EXPECT_EQ(data[3], 4.0f);
}

TEST(MatrixTest, ResizeZeroes) {
  Matrix m(1, 1, 9.0f);
  m.Resize(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.At(0, 0), 0.0f);
}

TEST(MatrixTest, AddSubInPlace) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 5}});
  a.AddInPlace(b);
  EXPECT_TRUE(AllClose(a, Matrix::FromRows({{4, 7}})));
  a.SubInPlace(b);
  EXPECT_TRUE(AllClose(a, Matrix::FromRows({{1, 2}})));
}

TEST(MatrixTest, ScaleInPlace) {
  Matrix a = Matrix::FromRows({{1, -2}});
  a.ScaleInPlace(-3.0f);
  EXPECT_TRUE(AllClose(a, Matrix::FromRows({{-3, 6}})));
}

TEST(MatrixTest, AxpyInPlace) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{10, 20}});
  a.AxpyInPlace(0.5f, b);
  EXPECT_TRUE(AllClose(a, Matrix::FromRows({{6, 12}})));
}

TEST(MatrixTest, SetRowAndRow) {
  Matrix m(2, 3);
  const float vals[3] = {1, 2, 3};
  m.SetRow(1, vals);
  Matrix row = m.Row(1);
  EXPECT_TRUE(AllClose(row, Matrix::FromRows({{1, 2, 3}})));
  EXPECT_EQ(m.At(0, 0), 0.0f);
}

TEST(MatrixTest, FillUniformWithinBounds) {
  Rng rng(1);
  Matrix m(10, 10);
  m.FillUniform(&rng, -0.5f, 0.5f);
  for (int i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -0.5f);
    EXPECT_LT(m.data()[i], 0.5f);
  }
}

TEST(MatrixTest, FillGaussianMoments) {
  Rng rng(2);
  Matrix m(100, 100);
  m.FillGaussian(&rng, 1.0f, 0.5f);
  EXPECT_NEAR(m.Mean(), 1.0f, 0.02f);
}

TEST(MatrixTest, SumMeanMaxAbs) {
  Matrix m = Matrix::FromRows({{1, -4}, {2, 1}});
  EXPECT_FLOAT_EQ(m.Sum(), 0.0f);
  EXPECT_FLOAT_EQ(m.Mean(), 0.0f);
  EXPECT_FLOAT_EQ(m.MaxAbs(), 4.0f);
  EXPECT_FLOAT_EQ(m.SquaredNorm(), 1 + 16 + 4 + 1);
}

TEST(MatrixTest, SameShape) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  Matrix c(3, 2);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
}

TEST(MatrixTest, AllCloseTolerance) {
  Matrix a = Matrix::FromRows({{1.0f}});
  Matrix b = Matrix::FromRows({{1.0005f}});
  EXPECT_TRUE(AllClose(a, b, 1e-3f));
  EXPECT_FALSE(AllClose(a, b, 1e-5f));
}

TEST(MatrixTest, AllCloseShapeMismatch) {
  EXPECT_FALSE(AllClose(Matrix(1, 2), Matrix(2, 1)));
}

TEST(MatrixTest, DebugStringTruncates) {
  Matrix m(20, 20, 1.0f);
  const std::string s = m.DebugString(2, 2);
  EXPECT_NE(s.find("Matrix 20x20"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(MatrixTest, RowAtViewsWithoutCopying) {
  const Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  const RowView row = m.RowAt(1);
  EXPECT_EQ(row.cols, 3);
  EXPECT_EQ(row.data, m.RowPtr(1));  // borrowed, not copied
  EXPECT_EQ(row[0], 4.0f);
  EXPECT_EQ(row[2], 6.0f);
  float sum = 0.0f;
  for (float v : row) sum += v;
  EXPECT_EQ(sum, 15.0f);
}

TEST(MatrixTest, AllCloseAcceptsRowViews) {
  const Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  const Matrix single = Matrix::FromRows({{3, 4}});
  EXPECT_TRUE(AllClose(m.RowAt(1), m.RowAt(1)));
  EXPECT_FALSE(AllClose(m.RowAt(0), m.RowAt(1)));
  EXPECT_TRUE(AllClose(single, m.RowAt(1)));
  EXPECT_TRUE(AllClose(m.RowAt(1), single));
}

TEST(MatrixTest, CopyFromReusesStorage) {
  Matrix src = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix dst(4, 4);
  const float* storage = dst.data();
  dst.CopyFrom(src);
  EXPECT_EQ(dst.rows(), 2);
  EXPECT_EQ(dst.cols(), 2);
  EXPECT_EQ(dst.At(1, 0), 3.0f);
  // Shrinking fits in the existing capacity: no reallocation.
  EXPECT_EQ(dst.data(), storage);
}

TEST(MatrixTest, EnsureShapeSkipsZeroFillWhenShapeMatches) {
  Matrix m(2, 3);
  m.Fill(7.0f);
  m.EnsureShape(2, 3);  // same shape: contents untouched
  EXPECT_EQ(m.At(1, 2), 7.0f);
  m.EnsureShape(3, 2);  // shape change: reshaped and zeroed
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.MaxAbs(), 0.0f);
}

}  // namespace
}  // namespace groupsa::tensor
