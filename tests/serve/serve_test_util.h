#ifndef GROUPSA_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define GROUPSA_TESTS_SERVE_SERVE_TEST_UTIL_H_

#include <memory>
#include <string>
#include <utility>

#include "core/test_fixtures.h"
#include "serve/server.h"

namespace groupsa::serve::testing {

// A small config so model construction per generation stays fast.
inline core::GroupSaConfig SmallConfig() {
  core::GroupSaConfig c = core::GroupSaConfig::Default();
  c.embedding_dim = 8;
  c.attention_hidden = 8;
  c.ffn_hidden = 8;
  c.predictor_hidden = {8};
  c.fusion_hidden = {8};
  return c;
}

// Serving test rig over the tiny world: an in-memory model factory (fixed
// construction seed, so every generation holds identical parameters and
// responses are comparable across reloads) plus a same-seed oracle model
// outside the daemon for parity checks.
struct ServeRig {
  core::GroupSaConfig config = SmallConfig();
  core::testing::TinyFixture fixture;
  std::unique_ptr<core::GroupSaModel> oracle;
  std::unique_ptr<Server> server;

  static constexpr uint64_t kModelSeed = 11;

  explicit ServeRig(const ServeConfig& sc,
                    bool factory_yields_null_model = false) {
    fixture = core::testing::TinyFixture::Make(config);
    // Make() returns by value; the ModelData pointers inside it refer to the
    // temporary's world, so re-point them at the member we moved into.
    fixture.model_data.groups = &fixture.world.dataset.groups;
    fixture.model_data.social = &fixture.world.dataset.social;
    oracle = fixture.MakeModel(config, kModelSeed);
    Server::ModelFactory factory =
        [this, factory_yields_null_model](
            const std::string&,
            std::unique_ptr<core::GroupSaModel>* out) -> Status {
      if (factory_yields_null_model) {
        out->reset();
        return Status::Ok();
      }
      *out = fixture.MakeModel(config, kModelSeed);
      return Status::Ok();
    };
    server = std::make_unique<Server>(
        sc, std::move(factory), "<in-memory>", fixture.ui.train,
        fixture.world.dataset.num_users,
        fixture.world.dataset.groups.num_groups(),
        fixture.world.dataset.num_items, &fixture.ui_train,
        &fixture.gi_train);
  }

  ScheduleConfig Schedule(int num_requests, uint64_t seed) const {
    ScheduleConfig sc;
    sc.num_requests = num_requests;
    sc.seed = seed;
    sc.num_users = fixture.world.dataset.num_users;
    sc.num_groups = fixture.world.dataset.groups.num_groups();
    return sc;
  }

  // The direct-engine answer the pipeline must reproduce bit for bit.
  std::vector<std::pair<data::ItemId, double>> Direct(const Request& r) {
    core::InferenceEngine& engine = oracle->inference();
    const data::InteractionMatrix* user_ex =
        r.exclude_seen ? &fixture.ui_train : nullptr;
    const data::InteractionMatrix* group_ex =
        r.exclude_seen ? &fixture.gi_train : nullptr;
    switch (r.kind) {
      case Request::Kind::kUser:
        return engine.RecommendForUser(r.user, r.k, user_ex);
      case Request::Kind::kGroup:
        return engine.RecommendForGroup(r.group, r.k, group_ex);
      case Request::Kind::kMembers:
        return engine.RecommendForMembers(r.members, r.k, user_ex);
    }
    return {};
  }
};

}  // namespace groupsa::serve::testing

#endif  // GROUPSA_TESTS_SERVE_SERVE_TEST_UTIL_H_
