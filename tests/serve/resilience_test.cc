// Resilience-layer suite: deadlines, retry/backoff, the circuit breaker,
// worker supervision and reload retries — each exercised deterministically.
// Serialized Call()s drive the breaker scenes (one request in flight at a
// time makes every virtual-clock reading a pure function of the scene);
// Pause() plus invalid-request clock fillers age queued requests past their
// deadlines without racing the workers.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "serve/circuit_breaker.h"
#include "serve/harness.h"
#include "serve/server.h"
#include "serve/serve_test_util.h"

namespace groupsa::serve {
namespace {

using serve::testing::ServeRig;

class ResilienceTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

Request UserRequest(int user, int k = 4) {
  Request r;
  r.kind = Request::Kind::kUser;
  r.user = user;
  r.k = k;
  return r;
}

// An invalid request is rejected before admission but still advances the
// virtual clock by its submission tick — the deadline tests use a burst of
// these to age queued requests without occupying queue slots.
Request ClockFiller() {
  Request r;
  r.kind = Request::Kind::kUser;
  r.user = 0;
  r.k = 0;  // invalid: k must be >= 1
  return r;
}

// ---------------------------------------------------------------------------
// Request validation
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, ValidationTableRejectsEveryMalformedShape) {
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  const int num_users = rig.fixture.world.dataset.num_users;
  const int num_groups = rig.fixture.world.dataset.groups.num_groups();

  struct Case {
    std::string name;
    Request request;
    std::string want_substring;
  };
  std::vector<Case> cases;
  {
    Case c{"k zero", UserRequest(0, 0), "k must be >= 1"};
    cases.push_back(c);
  }
  {
    Case c{"k negative", UserRequest(0, -3), "k must be >= 1"};
    cases.push_back(c);
  }
  {
    Case c{"user negative", UserRequest(-1), "user id -1 out of range"};
    cases.push_back(c);
  }
  {
    Case c{"user past range", UserRequest(num_users),
           "user id " + std::to_string(num_users) + " out of range"};
    cases.push_back(c);
  }
  {
    Request r;
    r.kind = Request::Kind::kGroup;
    r.group = num_groups;
    r.k = 3;
    Case c{"group past range", r,
           "group id " + std::to_string(num_groups) + " out of range"};
    cases.push_back(c);
  }
  {
    Request r;
    r.kind = Request::Kind::kGroup;
    r.group = -7;
    r.k = 3;
    Case c{"group negative", r, "group id -7 out of range"};
    cases.push_back(c);
  }
  {
    Request r;
    r.kind = Request::Kind::kMembers;
    r.k = 3;
    Case c{"members empty", r, "members list is empty"};
    cases.push_back(c);
  }
  {
    Request r;
    r.kind = Request::Kind::kMembers;
    r.members = {0, num_users};
    r.k = 3;
    Case c{"member past range",
           r, "member id " + std::to_string(num_users) + " out of range"};
    cases.push_back(c);
  }
  {
    Request r;
    r.kind = Request::Kind::kMembers;
    r.members = {2, 0, 2};
    r.k = 3;
    Case c{"duplicate member", r, "duplicate member id 2"};
    cases.push_back(c);
  }

  int64_t want_invalid = 0;
  for (const Case& c : cases) {
    const Response r = rig.server->Call(c.request);
    EXPECT_TRUE(r.rejected) << c.name;
    EXPECT_FALSE(r.degraded) << c.name;
    EXPECT_FALSE(r.expired) << c.name;
    EXPECT_TRUE(r.items.empty()) << c.name;
    EXPECT_NE(r.error.find("invalid request"), std::string::npos)
        << c.name << ": " << r.error;
    EXPECT_NE(r.error.find(c.want_substring), std::string::npos)
        << c.name << ": " << r.error;
    ++want_invalid;
    EXPECT_EQ(rig.server->stats().invalid, want_invalid) << c.name;
  }

  // A well-formed request still sails through after all those rejections.
  const Response ok = rig.server->Call(UserRequest(0));
  EXPECT_FALSE(ok.rejected);
  EXPECT_FALSE(ok.degraded);
  EXPECT_EQ(ok.items.size(), 4u);

  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.invalid, static_cast<int64_t>(cases.size()));
  EXPECT_EQ(stats.rejected, stats.invalid);
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.shed + stats.rejected + stats.expired);
  rig.server->Stop();
}

TEST_F(ResilienceTest, FuzzedGarbageNeverCrashesAndAlwaysResolves) {
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  const int num_users = rig.fixture.world.dataset.num_users;
  Rng rng(0xf00d);
  for (int i = 0; i < 300; ++i) {
    Request r;
    const int kind = rng.NextInt(3);
    r.kind = kind == 0   ? Request::Kind::kUser
             : kind == 1 ? Request::Kind::kGroup
                         : Request::Kind::kMembers;
    // Ids and k drawn from a range straddling valid and wildly invalid.
    r.user = rng.NextInt(3 * num_users) - num_users;
    r.group = rng.NextInt(40) - 15;
    r.k = rng.NextInt(12) - 2;
    const int members = rng.NextInt(5);
    for (int m = 0; m < members; ++m)
      r.members.push_back(rng.NextInt(2 * num_users) - num_users / 2);
    const Response response = rig.server->Call(r);
    // Exactly one terminal disposition, never a hang, never a crash.
    EXPECT_TRUE(response.rejected || response.shed || !response.items.empty() ||
                response.degraded)
        << FormatRequest(r) << " -> " << FormatResponse(response);
    if (response.rejected) {
      EXPECT_TRUE(response.items.empty());
    }
  }
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.submitted, 300);
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.shed + stats.rejected + stats.expired);
  rig.server->Stop();
  EXPECT_EQ(rig.server->stats().admitted, rig.server->stats().completed);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, CarriedAbsoluteDeadlineExpiresAtTheDoor) {
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  // Burn a few ticks so the clock is well past tick 1.
  rig.server->Call(UserRequest(0));
  ASSERT_GT(rig.server->now_tick(), 1u);

  Request r = UserRequest(1);
  r.deadline_tick = 1;  // long past
  const Response response = rig.server->Call(r);
  EXPECT_TRUE(response.expired);
  EXPECT_FALSE(response.rejected);
  EXPECT_TRUE(response.items.empty());
  EXPECT_EQ(response.error, "deadline tick 1 expired");

  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.expired_queue, 0);  // never admitted, door-expired
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.shed + stats.rejected + stats.expired);
  rig.server->Stop();
}

TEST_F(ResilienceTest, QueuedRequestsExpireWhileThePipelineIsPaused) {
  ServeConfig sc;
  sc.workers = 2;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());

  // Park the workers, queue a burst with tight budgets, then age the queue
  // with clock fillers: every submission is one tick, so the burst's
  // deadlines pass while it is still queued, deterministically — no worker
  // races the expiry decision because no worker is running.
  rig.server->Pause();
  std::vector<std::future<Response>> burst;
  for (int i = 0; i < 3; ++i) {
    Request r = UserRequest(i);
    r.deadline_ticks = 2;  // expires two ticks after admission
    burst.push_back(rig.server->Submit(r));
  }
  std::vector<std::future<Response>> fillers;
  for (int i = 0; i < 10; ++i)
    fillers.push_back(rig.server->Submit(ClockFiller()));
  rig.server->Resume();

  for (std::future<Response>& f : burst) {
    const Response r = f.get();
    EXPECT_TRUE(r.expired) << FormatResponse(r);
    EXPECT_TRUE(r.items.empty());
    EXPECT_NE(r.error.find("expired"), std::string::npos);
  }
  for (std::future<Response>& f : fillers) EXPECT_TRUE(f.get().rejected);

  rig.server->Stop();
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.expired_queue, 3);  // admitted, then pop-expired
  EXPECT_EQ(stats.expired, 0);        // none were dead on arrival
  EXPECT_EQ(stats.invalid, 10);
  EXPECT_EQ(stats.submitted,
            stats.admitted + stats.shed + stats.rejected + stats.expired);
  EXPECT_EQ(stats.admitted, stats.completed);
}

TEST_F(ResilienceTest, ServerWideDeadlineBudgetAppliesWhenRequestCarriesNone) {
  ServeConfig sc;
  sc.deadline_ticks = 2;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  rig.server->Pause();
  std::future<Response> victim = rig.server->Submit(UserRequest(0));
  std::vector<std::future<Response>> fillers;
  for (int i = 0; i < 6; ++i)
    fillers.push_back(rig.server->Submit(ClockFiller()));
  rig.server->Resume();
  EXPECT_TRUE(victim.get().expired);
  for (std::future<Response>& f : fillers) f.get();
  rig.server->Stop();
}

// ---------------------------------------------------------------------------
// Retry with backoff
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, RetriesAbsorbTransientFaultsWithoutDegrading) {
  ServeConfig sc;
  sc.backoff.max_retries = 3;
  // Breaker armed with a hair trigger: if a retry-absorbed fault counted as
  // a failure this scene would trip it. Request-final semantics keep it
  // closed.
  sc.breaker.enabled = true;
  sc.breaker.window = 4;
  sc.breaker.threshold = 1;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());

  Request r = UserRequest(2, 5);
  r.chaos.fault_attempts = 2;  // attempts 0 and 1 fault, attempt 2 serves
  const Response response = rig.server->Call(r);
  EXPECT_FALSE(response.degraded) << response.error;
  EXPECT_FALSE(response.expired);
  EXPECT_EQ(response.retries, 2);
  EXPECT_EQ(response.items,
            rig.Direct(UserRequest(2, 5)));  // the real model answer

  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.worker_faults, 2);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.breaker_trips, 0);  // absorbed faults are successes
  EXPECT_EQ(stats.breaker_state, 0);
  rig.server->Stop();
}

TEST_F(ResilienceTest, ExhaustedRetriesDegradeAndCountTheAttempts) {
  ServeConfig sc;
  sc.backoff.max_retries = 2;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  Request r = UserRequest(1);
  r.chaos.fault_attempts = 255;  // hard fault: every attempt fails
  const Response response = rig.server->Call(r);
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.retries, 2);
  EXPECT_EQ(response.items.size(), 4u);  // popularity still answers
  EXPECT_NE(response.error.find("injected fault at serve.worker"),
            std::string::npos);
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.worker_faults, 3);  // initial attempt + 2 retries
  EXPECT_EQ(stats.retries, 2);
  rig.server->Stop();
}

TEST_F(ResilienceTest, BackoffTicksChargeTheDeadlineAndExpireTheRequest) {
  ServeConfig sc;
  sc.backoff.max_retries = 8;
  sc.backoff.base_ticks = 4;
  sc.backoff.jitter = 0.0;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  Request r = UserRequest(0);
  r.deadline_ticks = 3;        // tighter than one backoff delay
  r.chaos.fault_attempts = 255;
  const Response response = rig.server->Call(r);
  // The first retry's 4-tick delay overruns the 3-tick budget: the request
  // expires mid-retry instead of burning seven more attempts.
  EXPECT_TRUE(response.expired) << FormatResponse(response);
  EXPECT_NE(response.error.find("during retry backoff"), std::string::npos);
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.expired_queue, 1);
  EXPECT_EQ(stats.retries, 1);
  rig.server->Stop();
}

TEST_F(ResilienceTest, WorkerFailpointStillDegradesWithRetriesOff) {
  // The pre-resilience contract: with max_retries at its default of 0 the
  // hit-counted failpoint degrades exactly one response, same bytes as
  // before the retry layer existed.
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ASSERT_TRUE(failpoint::Arm("serve.worker=error@1"));
  const Response hit = rig.server->Call(UserRequest(0));
  EXPECT_TRUE(hit.degraded);
  EXPECT_EQ(hit.retries, 0);
  EXPECT_EQ(hit.error, "injected fault at serve.worker");
  const Response clean = rig.server->Call(UserRequest(0));
  EXPECT_FALSE(clean.degraded);
  rig.server->Stop();
}

// ---------------------------------------------------------------------------
// Circuit breaker (serialized scenes: Call() keeps one request in flight)
// ---------------------------------------------------------------------------

ServeConfig BreakerConfigForScenes() {
  ServeConfig sc;
  sc.workers = 1;
  sc.breaker.enabled = true;
  sc.breaker.window = 4;
  sc.breaker.threshold = 2;
  sc.breaker.open_ticks = 6;
  sc.breaker.probes = 1;
  return sc;
}

Request HardFault(int user = 0) {
  Request r = UserRequest(user);
  r.chaos.fault_attempts = 255;
  return r;
}

TEST_F(ResilienceTest, BreakerTripsExactlyAtTheThreshold) {
  ServeRig rig(BreakerConfigForScenes());
  ASSERT_TRUE(rig.server->Start().ok());

  // One failure: below threshold, still closed, model path still consulted.
  EXPECT_TRUE(rig.server->Call(HardFault()).degraded);
  EXPECT_EQ(rig.server->stats().breaker_trips, 0);
  EXPECT_EQ(rig.server->stats().breaker_state, 0);
  const Response before = rig.server->Call(UserRequest(1));
  EXPECT_FALSE(before.degraded);  // engine answered: breaker not in the way

  // Second failure inside the window: trips open.
  EXPECT_TRUE(rig.server->Call(HardFault()).degraded);
  // One success sits between the two failures, inside the window of 4, so
  // this is exactly failures == threshold — the boundary.
  EXPECT_EQ(rig.server->stats().breaker_trips, 1);
  EXPECT_EQ(rig.server->stats().breaker_state, 1);

  // While open, even a healthy request is short-circuited to popularity
  // without consulting the model.
  const Response blocked = rig.server->Call(UserRequest(1));
  EXPECT_TRUE(blocked.degraded);
  EXPECT_NE(blocked.error.find("circuit breaker open"), std::string::npos);
  rig.server->Stop();
}

TEST_F(ResilienceTest, BreakerHalfOpensProbesAndCloses) {
  ServeRig rig(BreakerConfigForScenes());
  ASSERT_TRUE(rig.server->Start().ok());
  EXPECT_TRUE(rig.server->Call(HardFault()).degraded);
  EXPECT_TRUE(rig.server->Call(HardFault()).degraded);
  ASSERT_EQ(rig.server->stats().breaker_trips, 1);

  // Each serialized Call advances the clock twice (submit + completion);
  // within open_ticks=6 of the trip requests short-circuit, then the next
  // one is admitted as a probe, succeeds, and closes the breaker.
  int short_circuited = 0;
  Response served;
  for (int i = 0; i < 20; ++i) {
    served = rig.server->Call(UserRequest(1));
    if (!served.degraded) break;
    EXPECT_NE(served.error.find("circuit breaker open"), std::string::npos);
    ++short_circuited;
  }
  EXPECT_FALSE(served.degraded) << "breaker never re-admitted the model";
  EXPECT_GT(short_circuited, 0);
  EXPECT_LT(short_circuited, 6);

  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.breaker_probes, 1);  // probes=1: one probe was enough
  EXPECT_EQ(stats.breaker_closes, 1);
  EXPECT_EQ(stats.breaker_reopens, 0);
  EXPECT_EQ(stats.breaker_state, 0);

  // Fully healthy again: the model path serves with no breaker routing.
  EXPECT_FALSE(rig.server->Call(UserRequest(2)).degraded);
  rig.server->Stop();
}

TEST_F(ResilienceTest, FailedProbeReopensTheBreaker) {
  ServeRig rig(BreakerConfigForScenes());
  ASSERT_TRUE(rig.server->Start().ok());
  EXPECT_TRUE(rig.server->Call(HardFault()).degraded);
  EXPECT_TRUE(rig.server->Call(HardFault()).degraded);
  ASSERT_EQ(rig.server->stats().breaker_trips, 1);

  // Ride out the cool-down with hard faults: the first one admitted as a
  // probe fails, snapping the breaker back open (a reopen, not a second
  // trip).
  for (int i = 0; i < 20; ++i) {
    rig.server->Call(HardFault());
    if (rig.server->stats().breaker_reopens > 0) break;
  }
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.breaker_reopens, 1);
  EXPECT_EQ(stats.breaker_trips, 1);
  EXPECT_EQ(stats.breaker_closes, 0);
  EXPECT_EQ(stats.breaker_state, 1);  // open again
  rig.server->Stop();
}

TEST_F(ResilienceTest, GenerationSwapResetsBreakerStateButKeepsCounters) {
  ServeRig rig(BreakerConfigForScenes());
  ASSERT_TRUE(rig.server->Start().ok());
  EXPECT_TRUE(rig.server->Call(HardFault()).degraded);
  EXPECT_TRUE(rig.server->Call(HardFault()).degraded);
  ASSERT_EQ(rig.server->stats().breaker_state, 1);

  ASSERT_TRUE(rig.server->Reload("<in-memory>").ok());
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.breaker_state, 0);  // fresh model, fresh window
  EXPECT_EQ(stats.breaker_trips, 1);  // history survives the reset
  EXPECT_FALSE(rig.server->Call(UserRequest(0)).degraded);
  rig.server->Stop();
}

// ---------------------------------------------------------------------------
// Worker supervision
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, SupervisorRescuesAHungWorkerWithoutDroppingTheJob) {
  ServeConfig sc;
  sc.workers = 1;  // the only worker hangs: the job MUST be stolen back
  sc.supervisor_poll_ms = 1;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());

  Request r = UserRequest(3, 5);
  r.chaos.hang = true;
  const Response rescued = rig.server->Call(r);
  // The response is the worker's normal answer: the hang cost latency, not
  // correctness (chaos.hang is cleared on rescue so the requeue serves).
  EXPECT_FALSE(rescued.degraded) << rescued.error;
  EXPECT_EQ(rescued.items, rig.Direct(UserRequest(3, 5)));

  ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.hangs_rescued, 1);
  EXPECT_EQ(stats.worker_restarts, 1);

  const ServerHealth health = rig.server->Health();
  ASSERT_EQ(health.workers.size(), 1u);
  EXPECT_EQ(health.workers[0].restarts, 1);
  EXPECT_TRUE(health.workers[0].alive);

  // The replacement worker carries normal traffic afterwards.
  EXPECT_FALSE(rig.server->Call(UserRequest(0)).degraded);
  rig.server->Stop();
  stats = rig.server->stats();
  EXPECT_EQ(stats.admitted, stats.completed);
}

TEST_F(ResilienceTest, HangFailpointTriggersTheSameRescuePath) {
  ServeConfig sc;
  sc.workers = 2;
  sc.supervisor_poll_ms = 1;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ASSERT_TRUE(failpoint::Arm("serve.worker.hang=error@1"));
  const Response rescued = rig.server->Call(UserRequest(1));
  EXPECT_FALSE(rescued.degraded);
  EXPECT_EQ(rig.server->stats().hangs_rescued, 1);
  rig.server->Stop();
}

TEST_F(ResilienceTest, StopReleasesAHungWorkerWithoutSupervision) {
  // With the supervisor off nobody rescues the job mid-flight — but Stop()
  // must still release the hung owner, which then self-serves the held job:
  // shutdown never strands a request inside a slot.
  ServeConfig sc;
  sc.workers = 1;
  sc.supervise = false;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  Request r = UserRequest(2);
  r.chaos.hang = true;
  std::future<Response> held = rig.server->Submit(r);
  // Give the worker a moment to pop and park (wall wait is fine in tests;
  // the assertion below does not depend on how long this takes).
  for (int i = 0; i < 200; ++i) {
    if (rig.server->Health().workers[0].hanging) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  rig.server->Stop();
  const Response response = held.get();
  EXPECT_FALSE(response.degraded) << response.error;
  EXPECT_EQ(response.items, rig.Direct(UserRequest(2)));
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.hangs_rescued, 0);  // released, not rescued
  EXPECT_EQ(stats.admitted, stats.completed);
}

// ---------------------------------------------------------------------------
// Reload: swap failpoint, Stop() interleaving, background retry
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, SwapFailpointFailsTheReloadAllOrNothing) {
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ASSERT_EQ(rig.server->generation(), 1u);
  ASSERT_TRUE(failpoint::Arm("serve.reload.swap=error@1"));

  const Status s = rig.server->Reload("<in-memory>");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("serve.reload.swap"), std::string::npos);
  EXPECT_EQ(rig.server->generation(), 1u);  // old generation kept serving
  EXPECT_EQ(rig.server->stats().failed_reloads, 1);
  EXPECT_FALSE(rig.server->Call(UserRequest(0)).degraded);

  // Failpoint exhausted: the next reload swaps cleanly.
  EXPECT_TRUE(rig.server->Reload("<in-memory>").ok());
  EXPECT_EQ(rig.server->generation(), 2u);
  rig.server->Stop();
}

TEST_F(ResilienceTest, ReloadAfterStopIsRefusedNotSwapped) {
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ASSERT_TRUE(rig.server->Reload("<in-memory>").ok());
  ASSERT_EQ(rig.server->generation(), 2u);
  rig.server->Stop();
  const Status s = rig.server->Reload("<in-memory>");
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("stopping"), std::string::npos) << s.message();
  EXPECT_EQ(rig.server->generation(), 2u);  // no post-join swap
}

TEST_F(ResilienceTest, ReloadRacingStopNeverSwapsAfterTheDrain) {
  // The regression this guards: a Reload captured before Stop() must not
  // complete its swap after the workers have been joined — the generation
  // that answered the last drained request is final.
  for (int round = 0; round < 5; ++round) {
    ServeConfig sc;
    sc.workers = 2;
    ServeRig rig(sc);
    ASSERT_TRUE(rig.server->Start().ok());
    std::atomic<bool> go{false};
    std::thread reloader([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (int i = 0; i < 4; ++i) {
        const Status reload_status = rig.server->Reload("<in-memory>");
        (void)reload_status;  // either outcome is legal in this race
      }
    });
    for (int i = 0; i < 6; ++i) rig.server->Call(UserRequest(i % 3));
    go.store(true, std::memory_order_release);
    rig.server->Stop();
    const uint64_t at_stop = rig.server->generation();
    reloader.join();
    // Whatever the interleaving, no swap landed after Stop() returned.
    EXPECT_EQ(rig.server->generation(), at_stop) << "round " << round;
    const ServerStats stats = rig.server->stats();
    EXPECT_EQ(stats.admitted, stats.completed) << "round " << round;
  }
}

TEST_F(ResilienceTest, FailedReloadRetriesInTheBackgroundAndRecovers) {
  ServeConfig sc;
  sc.reload_retries = 3;
  sc.supervisor_poll_ms = 1;
  sc.backoff.base_ticks = 1;
  sc.backoff.jitter = 0.0;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ASSERT_TRUE(failpoint::Arm("serve.reload.build=error@1"));

  const Status s = rig.server->Reload("<in-memory>");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(rig.server->generation(), 1u);
  EXPECT_TRUE(rig.server->Health().reload_retry_pending);

  // The retry fires once the virtual clock passes its due tick — i.e. after
  // more traffic, not after wall time. Drive traffic until it lands.
  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    rig.server->Call(UserRequest(i % 4));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Wait for the counter as well as the swap: the supervisor bumps
    // `reloads` just after publishing the generation, so polling only the
    // generation could read stats in between.
    recovered =
        rig.server->generation() == 2u && rig.server->stats().reloads == 1;
  }
  EXPECT_TRUE(recovered) << "background retry never swapped the generation";
  EXPECT_EQ(rig.server->generation(), 2u);
  const ServerStats stats = rig.server->stats();
  EXPECT_GE(stats.reload_retry_attempts, 1);
  EXPECT_EQ(stats.reloads, 1);
  EXPECT_EQ(stats.failed_reloads, 1);
  EXPECT_FALSE(rig.server->Health().reload_retry_pending);
  rig.server->Stop();
}

// ---------------------------------------------------------------------------
// Jitter determinism across thread counts
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, BackoffJitterIsIdenticalAcrossThreadCounts) {
  BackoffPolicy policy;
  policy.base_ticks = 8;
  policy.max_ticks = 512;
  policy.jitter = 0.5;
  constexpr int kKeys = 512;
  constexpr int kAttempts = 4;
  std::vector<uint64_t> serial(kKeys * kAttempts);
  for (int key = 0; key < kKeys; ++key)
    for (int attempt = 0; attempt < kAttempts; ++attempt)
      serial[static_cast<size_t>(key * kAttempts + attempt)] =
          BackoffDelayTicks(policy, static_cast<uint64_t>(key), attempt);
  for (int threads : {2, 4, 8}) {
    std::vector<uint64_t> parallel_draws(kKeys * kAttempts);
    parallel::ThreadPool pool(threads);
    pool.ParallelFor(0, kKeys, /*grain=*/16, [&](int64_t begin, int64_t end) {
      for (int64_t key = begin; key < end; ++key)
        for (int attempt = 0; attempt < kAttempts; ++attempt)
          parallel_draws[static_cast<size_t>(key * kAttempts + attempt)] =
              BackoffDelayTicks(policy, static_cast<uint64_t>(key), attempt);
    });
    EXPECT_EQ(parallel_draws, serial) << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Health snapshot
// ---------------------------------------------------------------------------

TEST_F(ResilienceTest, HealthReportsWorkersAndLifecycle) {
  ServeConfig sc;
  sc.workers = 3;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ServerHealth health = rig.server->Health();
  EXPECT_TRUE(health.running);
  EXPECT_TRUE(health.accepting);
  EXPECT_FALSE(health.paused);
  EXPECT_EQ(health.generation, 1u);
  EXPECT_EQ(health.breaker, BreakerState::kClosed);
  ASSERT_EQ(health.workers.size(), 3u);
  for (const ServerHealth::Worker& w : health.workers) {
    EXPECT_TRUE(w.alive);
    EXPECT_EQ(w.restarts, 0);
  }

  rig.server->Pause();
  EXPECT_TRUE(rig.server->Health().paused);
  rig.server->Resume();

  rig.server->Stop();
  health = rig.server->Health();
  EXPECT_FALSE(health.running);
  EXPECT_FALSE(health.accepting);
  for (const ServerHealth::Worker& w : health.workers)
    EXPECT_FALSE(w.alive);  // every loop exited through the drain
}

}  // namespace
}  // namespace groupsa::serve
