// Serving daemon behavior: request pipeline parity against direct
// InferenceEngine calls, admission control (shed and reject policies),
// failpoint-driven degradation, hot reload semantics, and
// drain-on-shutdown. The stress/soak suite lives in stress_test.cc; this
// file pins down each mechanism deterministically.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <vector>

#include "common/failpoint.h"
#include "serve/harness.h"
#include "serve_test_util.h"

namespace groupsa::serve {
namespace {

using serve::testing::ServeRig;

bool BitIdenticalItems(
    const std::vector<std::pair<data::ItemId, double>>& a,
    const std::vector<std::pair<data::ItemId, double>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].first != b[i].first) return false;
    if (std::memcmp(&a[i].second, &b[i].second, sizeof(double)) != 0)
      return false;
  }
  return true;
}

class ServerTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(ServerTest, PipelineMatchesDirectEngineBitForBit) {
  ServeConfig sc;
  sc.workers = 2;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());

  const std::vector<Request> schedule =
      BuildSchedule(rig.Schedule(/*num_requests=*/40, /*seed=*/3));
  for (const Request& request : schedule) {
    const Response response = rig.server->Call(request);
    EXPECT_FALSE(response.degraded);
    EXPECT_FALSE(response.shed);
    EXPECT_FALSE(response.rejected);
    EXPECT_EQ(response.generation, 1u);
    EXPECT_TRUE(BitIdenticalItems(response.items, rig.Direct(request)))
        << FormatRequest(request);
  }
  rig.server->Stop();
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.submitted, 40);
  EXPECT_EQ(stats.admitted, 40);
  EXPECT_EQ(stats.completed, 40);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.degraded, 0);
}

TEST_F(ServerTest, PausedServerShedsBeyondQueueDepthAndDrainsOnResume) {
  ServeConfig sc;
  sc.workers = 1;
  sc.queue_depth = 3;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  rig.server->Pause();

  Request request;
  request.kind = Request::Kind::kUser;
  request.user = 1;
  request.k = 4;
  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 3; ++i) queued.push_back(rig.server->Submit(request));

  // Depth 3 reached: the fourth submit sheds to popularity on this thread.
  const Response shed = rig.server->Call(request);
  EXPECT_TRUE(shed.shed);
  EXPECT_TRUE(shed.degraded);
  EXPECT_EQ(shed.error, "admission queue full");
  ASSERT_EQ(shed.items.size(), 4u);

  // Queued requests are parked, not answered.
  for (auto& f : queued)
    EXPECT_EQ(f.wait_for(std::chrono::milliseconds(0)),
              std::future_status::timeout);

  rig.server->Resume();
  for (auto& f : queued) {
    const Response r = f.get();
    EXPECT_FALSE(r.degraded);
    EXPECT_TRUE(BitIdenticalItems(r.items, rig.Direct(request)));
  }
  rig.server->Stop();
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.completed, 3);
  EXPECT_EQ(stats.peak_queue_depth, 3);
}

TEST_F(ServerTest, RejectPolicyAnswersWithoutRanking) {
  ServeConfig sc;
  sc.workers = 1;
  sc.queue_depth = 1;
  sc.overload = ServeConfig::OverloadPolicy::kReject;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  rig.server->Pause();

  Request request;
  request.kind = Request::Kind::kGroup;
  request.group = 0;
  request.k = 2;
  std::future<Response> queued = rig.server->Submit(request);
  const Response rejected = rig.server->Call(request);
  EXPECT_TRUE(rejected.rejected);
  EXPECT_FALSE(rejected.shed);
  EXPECT_TRUE(rejected.items.empty());
  EXPECT_EQ(rejected.error, "admission queue full");

  rig.server->Resume();
  EXPECT_FALSE(queued.get().degraded);
  rig.server->Stop();
  EXPECT_EQ(rig.server->stats().rejected, 1);
}

TEST_F(ServerTest, WorkerFailpointDegradesThatResponseOnly) {
  ServeConfig sc;
  sc.workers = 1;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ASSERT_TRUE(failpoint::Arm("serve.worker=error@2"));

  Request request;
  request.kind = Request::Kind::kUser;
  request.user = 2;
  request.k = 3;
  const Response first = rig.server->Call(request);
  EXPECT_FALSE(first.degraded);

  const Response second = rig.server->Call(request);
  EXPECT_TRUE(second.degraded);
  EXPECT_FALSE(second.shed);
  EXPECT_EQ(second.error, "injected fault at serve.worker");
  ASSERT_EQ(second.items.size(), 3u);  // popularity still ranks

  const Response third = rig.server->Call(request);
  EXPECT_FALSE(third.degraded);
  EXPECT_TRUE(BitIdenticalItems(third.items, rig.Direct(request)));
  rig.server->Stop();
  EXPECT_EQ(rig.server->stats().degraded, 1);
  EXPECT_EQ(rig.server->stats().completed, 3);
}

TEST_F(ServerTest, SubmitFailpointRejectsBeforeTheQueue) {
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ASSERT_TRUE(failpoint::Arm("serve.submit=error@1"));

  Request request;
  const Response r = rig.server->Call(request);
  EXPECT_TRUE(r.rejected);
  EXPECT_EQ(r.error, "injected fault at serve.submit");
  rig.server->Stop();
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.admitted, 0);
}

TEST_F(ServerTest, ReloadSwapsGenerationWithIdenticalScores) {
  ServeConfig sc;
  sc.workers = 2;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  EXPECT_EQ(rig.server->generation(), 1u);

  Request request;
  request.kind = Request::Kind::kMembers;
  request.members = {1, 3, 5};
  request.k = 5;
  const Response before = rig.server->Call(request);
  ASSERT_TRUE(rig.server->Reload("<in-memory>").ok());
  EXPECT_EQ(rig.server->generation(), 2u);
  const Response after = rig.server->Call(request);

  EXPECT_EQ(before.generation, 1u);
  EXPECT_EQ(after.generation, 2u);
  // The factory rebuilds identical parameters, so the swap must be
  // invisible in the scores: bit-identical across generations.
  EXPECT_TRUE(BitIdenticalItems(before.items, after.items));
  rig.server->Stop();
  EXPECT_EQ(rig.server->stats().reloads, 1);
}

TEST_F(ServerTest, FailedReloadKeepsTheOldGenerationServing) {
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  ASSERT_TRUE(failpoint::Arm("serve.reload.build=error"));

  const Status s = rig.server->Reload("<in-memory>");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(rig.server->generation(), 1u);

  Request request;
  request.kind = Request::Kind::kUser;
  request.user = 0;
  request.k = 2;
  const Response r = rig.server->Call(request);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.generation, 1u);
  rig.server->Stop();
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.reloads, 0);
  EXPECT_EQ(stats.failed_reloads, 1);
}

TEST_F(ServerTest, NullModelGenerationServesPopularityOnly) {
  ServeConfig sc;
  ServeRig rig(sc, /*factory_yields_null_model=*/true);
  ASSERT_TRUE(rig.server->Start().ok());

  Request request;
  request.kind = Request::Kind::kUser;
  request.user = 1;
  request.k = 5;
  const Response r = rig.server->Call(request);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.error, "model unavailable");
  EXPECT_EQ(r.items.size(), 5u);
  rig.server->Stop();
  EXPECT_EQ(rig.server->stats().degraded, 1);
}

TEST_F(ServerTest, StopDrainsQueuedRequestsAndLaterSubmitsReject) {
  ServeConfig sc;
  sc.workers = 1;
  sc.queue_depth = 8;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());
  rig.server->Pause();

  Request request;
  request.kind = Request::Kind::kGroup;
  request.group = 1;
  request.k = 3;
  std::vector<std::future<Response>> queued;
  for (int i = 0; i < 5; ++i) queued.push_back(rig.server->Submit(request));

  // Stop() must answer all five (drain), not drop them.
  rig.server->Stop();
  for (auto& f : queued) {
    const Response r = f.get();
    EXPECT_FALSE(r.rejected);
    EXPECT_TRUE(BitIdenticalItems(r.items, rig.Direct(request)));
  }

  const Response late = rig.server->Call(request);
  EXPECT_TRUE(late.rejected);
  EXPECT_EQ(late.error, "server not running");

  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.admitted, 5);
  EXPECT_EQ(stats.completed, 5);
  EXPECT_EQ(stats.rejected, 1);
}

TEST_F(ServerTest, InvalidRequestIsRejectedAtTheDoorWithAReason) {
  ServeConfig sc;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());

  Request request;
  request.kind = Request::Kind::kUser;
  request.user = 999999;  // far out of range
  request.k = 4;
  const Response r = rig.server->Call(request);
  EXPECT_TRUE(r.rejected);
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.items.empty());
  EXPECT_NE(r.error.find("out of range"), std::string::npos) << r.error;
  const ServerStats stats = rig.server->stats();
  EXPECT_EQ(stats.invalid, 1);
  EXPECT_EQ(stats.rejected, 1);
  rig.server->Stop();
}

TEST_F(ServerTest, ScheduleIsDeterministicPerSeed) {
  ServeConfig sc;
  ServeRig rig(sc);
  const ScheduleConfig a = rig.Schedule(50, 9);
  const std::vector<Request> one = BuildSchedule(a);
  const std::vector<Request> two = BuildSchedule(a);
  ASSERT_EQ(one.size(), two.size());
  for (size_t i = 0; i < one.size(); ++i)
    EXPECT_EQ(FormatRequest(one[i]), FormatRequest(two[i]));

  ScheduleConfig b = a;
  b.seed = 10;
  const std::vector<Request> other = BuildSchedule(b);
  bool any_different = false;
  for (size_t i = 0; i < one.size(); ++i)
    any_different = any_different ||
                    FormatRequest(one[i]) != FormatRequest(other[i]);
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace groupsa::serve
