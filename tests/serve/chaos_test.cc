// Seeded chaos soak: a scripted storm of deterministic faults, hangs,
// deadlines and breaker trips whose entire transcript must come out
// byte-identical at 1 worker x 1 thread and 4 workers x 4 threads — the
// resilience layer's determinism claim, end to end.
//
// Three phases per run:
//   A  concurrent drive with chaos bits: transient faults sized to be
//      absorbed by the retry budget (request-final successes, so the
//      breaker stays closed) and hang bits that exercise the supervisor.
//      Responses are pure functions of (request, generation), so the
//      transcript is interleaving-independent.
//   B  serialized deadline scene: Pause(), a burst with tight budgets,
//      invalid-request clock fillers to age the queue, Resume(). Every
//      burst request expires at pop, deterministically.
//   C  serialized breaker scene: hard faults to the trip threshold, then a
//      fixed count of clean calls that ride the cool-down, probe and close.
//
// The extended conservation identity (submitted == admitted + shed +
// rejected + expired, admitted == completed once stopped) must hold with
// all of that in flight, and no worker may end the run dead.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "serve/harness.h"
#include "serve/server.h"
#include "serve/serve_test_util.h"

namespace groupsa::serve {
namespace {

using serve::testing::ServeRig;

struct ChaosRunResult {
  std::string transcript;
  ServerStats stats;
  int64_t workers_alive_at_end = 0;
};

Request TightDeadline(int user) {
  Request r;
  r.kind = Request::Kind::kUser;
  r.user = user;
  r.k = 4;
  r.deadline_ticks = 2;
  return r;
}

Request InvalidFiller() {
  Request r;
  r.kind = Request::Kind::kUser;
  r.k = 0;  // rejected at validation; still advances the clock one tick
  return r;
}

Request HardFault(int user) {
  Request r;
  r.kind = Request::Kind::kUser;
  r.user = user;
  r.k = 4;
  r.chaos.fault_attempts = 255;  // outlives any retry budget
  return r;
}

Request CleanUser(int user) {
  Request r;
  r.kind = Request::Kind::kUser;
  r.user = user;
  r.k = 4;
  return r;
}

ChaosRunResult RunChaosScenario(int workers, int lanes, int global_threads) {
  parallel::SetGlobalThreads(global_threads);
  ServeConfig sc;
  sc.workers = workers;
  sc.queue_depth = 64;
  sc.backoff.max_retries = 2;
  sc.supervisor_poll_ms = 1;
  sc.breaker.enabled = true;
  sc.breaker.window = 8;
  sc.breaker.threshold = 4;
  sc.breaker.open_ticks = 8;
  sc.breaker.probes = 2;
  ServeRig rig(sc);
  ChaosRunResult result;
  EXPECT_TRUE(rig.server->Start().ok());
  if (!rig.server->running()) return result;

  // ---- phase A: concurrent chaos drive ----
  std::vector<Request> schedule = BuildSchedule(rig.Schedule(60, 21));
  ChaosConfig chaos;
  chaos.seed = 33;
  chaos.fault_fraction = 0.35;
  chaos.max_fault_attempts = 2;  // <= max_retries: every fault is absorbed
  chaos.hang_fraction = 0.1;
  chaos.deadline_fraction = 0.0;  // deadlines are phase B's serialized job
  ApplyChaos(chaos, &schedule);
  DriveOptions options;
  options.client_lanes = lanes;
  const DriveReport report = DriveSchedule(rig.server.get(), schedule, options);
  EXPECT_EQ(CheckConservation(report, rig.server->stats(), /*stopped=*/false),
            "");
  result.transcript = FormatDrive(schedule, report);

  const auto record = [&result](const Request& request, const Response& r) {
    result.transcript += FormatRequest(request) + " -> " + FormatResponse(r) +
                         "\n";
  };

  // ---- phase B: serialized deadline scene ----
  rig.server->Pause();
  std::vector<Request> burst_requests;
  std::vector<std::future<Response>> burst;
  for (int i = 0; i < 3; ++i) {
    burst_requests.push_back(TightDeadline(i));
    burst.push_back(rig.server->Submit(burst_requests.back()));
  }
  std::vector<Request> filler_requests;
  std::vector<std::future<Response>> fillers;
  for (int i = 0; i < 8; ++i) {
    filler_requests.push_back(InvalidFiller());
    fillers.push_back(rig.server->Submit(filler_requests.back()));
  }
  rig.server->Resume();
  for (size_t i = 0; i < burst.size(); ++i) {
    const Response r = burst[i].get();
    EXPECT_TRUE(r.expired) << FormatResponse(r);
    record(burst_requests[i], r);
  }
  for (size_t i = 0; i < fillers.size(); ++i) {
    const Response r = fillers[i].get();
    EXPECT_TRUE(r.rejected);
    record(filler_requests[i], r);
  }

  // ---- phase C: serialized breaker trip and recovery ----
  for (int i = 0; i < 4; ++i) {  // threshold = 4 request-final failures
    const Request request = HardFault(i % 3);
    const Response r = rig.server->Call(request);
    EXPECT_TRUE(r.degraded);
    record(request, r);
  }
  EXPECT_EQ(rig.server->stats().breaker_trips, 1);
  // A fixed count of clean calls rides out the cool-down deterministically:
  // some short-circuit to popularity, then two probes pass, then the model
  // serves again.
  bool model_recovered = false;
  for (int i = 0; i < 12; ++i) {
    const Request request = CleanUser(i % 4);
    const Response r = rig.server->Call(request);
    record(request, r);
    model_recovered = !r.degraded;
  }
  EXPECT_TRUE(model_recovered) << "breaker never re-admitted the model";
  EXPECT_EQ(rig.server->stats().breaker_closes, 1);

  // ---- zero crashed workers, then stop and check conservation ----
  const ServerHealth health = rig.server->Health();
  EXPECT_EQ(static_cast<int>(health.workers.size()), workers);
  for (const ServerHealth::Worker& w : health.workers)
    result.workers_alive_at_end += w.alive ? 1 : 0;

  rig.server->Stop();
  result.stats = rig.server->stats();
  EXPECT_EQ(result.stats.submitted,
            result.stats.admitted + result.stats.shed + result.stats.rejected +
                result.stats.expired);
  EXPECT_EQ(result.stats.admitted, result.stats.completed);
  parallel::SetGlobalThreads(1);
  return result;
}

TEST(ChaosTest, TranscriptIsByteIdenticalAcrossWorkersAndThreads) {
  const ChaosRunResult serial = RunChaosScenario(/*workers=*/1, /*lanes=*/1,
                                                 /*global_threads=*/1);
  const ChaosRunResult wide = RunChaosScenario(/*workers=*/4, /*lanes=*/4,
                                               /*global_threads=*/4);
  ASSERT_FALSE(serial.transcript.empty());
  EXPECT_EQ(serial.transcript, wide.transcript);

  // Both runs finish with every worker loop alive.
  EXPECT_EQ(serial.workers_alive_at_end, 1);
  EXPECT_EQ(wide.workers_alive_at_end, 4);

  // The chaos actually exercised the layer (these are schedule-determined,
  // so they are exact, not >=).
  EXPECT_GT(serial.stats.retries, 0);
  EXPECT_GT(serial.stats.hangs_rescued, 0);
  EXPECT_EQ(serial.stats.expired_queue, 3);
  EXPECT_EQ(serial.stats.invalid, 8);
  EXPECT_EQ(serial.stats.breaker_trips, 1);
  EXPECT_EQ(serial.stats.breaker_closes, 1);
  EXPECT_EQ(serial.stats.breaker_probes, 2);

  // Interleaving-independent counters agree between the two widths.
  EXPECT_EQ(serial.stats.retries, wide.stats.retries);
  EXPECT_EQ(serial.stats.worker_faults, wide.stats.worker_faults);
  EXPECT_EQ(serial.stats.hangs_rescued, wide.stats.hangs_rescued);
  EXPECT_EQ(serial.stats.expired_queue, wide.stats.expired_queue);
  EXPECT_EQ(serial.stats.invalid, wide.stats.invalid);
  EXPECT_EQ(serial.stats.breaker_trips, wide.stats.breaker_trips);
  EXPECT_EQ(serial.stats.breaker_reopens, wide.stats.breaker_reopens);
  EXPECT_EQ(serial.stats.breaker_closes, wide.stats.breaker_closes);
  EXPECT_EQ(serial.stats.breaker_probes, wide.stats.breaker_probes);
  EXPECT_EQ(serial.stats.now_tick, wide.stats.now_tick);
}

TEST(ChaosTest, RepeatedRunsAreByteIdentical) {
  const ChaosRunResult a = RunChaosScenario(2, 2, 2);
  const ChaosRunResult b = RunChaosScenario(2, 2, 2);
  EXPECT_EQ(a.transcript, b.transcript);
  EXPECT_EQ(a.stats.now_tick, b.stats.now_tick);
}

}  // namespace
}  // namespace groupsa::serve
