// Stress/soak suite for the serving daemon: N client lanes x M requests
// with hot reloads and serve.* failpoints firing mid-flight. The invariants
// under fire:
//
//   * no lost or duplicated responses — every schedule slot resolves
//     exactly once, with a unique ticket id (CheckConservation);
//   * the monotone counters only ever grow, sampled concurrently from a
//     separate thread while the pipeline is under load;
//   * non-degraded responses stay bit-identical to direct InferenceEngine
//     calls even while generations swap underneath them;
//   * the whole thing is TSan-clean (this file is race-labelled and runs
//     in the ThreadSanitizer CI lane).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/inference_engine.h"
#include "serve/harness.h"
#include "serve/server.h"
#include "serve_test_util.h"

namespace groupsa::serve {
namespace {

using serve::testing::ServeRig;

bool CountersMonotone(const ServerStats& before, const ServerStats& after) {
  return after.submitted >= before.submitted &&
         after.admitted >= before.admitted && after.shed >= before.shed &&
         after.rejected >= before.rejected &&
         after.completed >= before.completed &&
         after.degraded >= before.degraded &&
         after.reloads >= before.reloads &&
         after.failed_reloads >= before.failed_reloads &&
         after.peak_queue_depth >= before.peak_queue_depth &&
         after.expired >= before.expired &&
         after.expired_queue >= before.expired_queue &&
         after.invalid >= before.invalid && after.retries >= before.retries &&
         after.worker_faults >= before.worker_faults &&
         after.hangs_rescued >= before.hangs_rescued &&
         after.worker_restarts >= before.worker_restarts &&
         after.reload_retry_attempts >= before.reload_retry_attempts &&
         after.breaker_trips >= before.breaker_trips &&
         after.breaker_reopens >= before.breaker_reopens &&
         after.breaker_closes >= before.breaker_closes &&
         after.breaker_probes >= before.breaker_probes &&
         after.now_tick >= before.now_tick;
  // breaker_state is a gauge, not a counter — deliberately not checked.
}

class StressTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

// The core soak: lanes x workers sweep with reloads and faults mid-flight.
void RunSoak(int lanes, int workers, bool with_failpoints) {
  ServeConfig sc;
  sc.workers = workers;
  sc.queue_depth = 4;  // small on purpose: overload paths must fire
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());

  if (with_failpoints) {
    // One transient worker fault, a persistent submit fault from hit 90 on,
    // and a failing second reload — the daemon must degrade, not crash.
    ASSERT_TRUE(failpoint::Arm("serve.worker=error@17"));
    ASSERT_TRUE(failpoint::Arm("serve.submit=error@90+"));
    ASSERT_TRUE(failpoint::Arm("serve.reload.build=error@2"));
  }

  const std::vector<Request> schedule =
      BuildSchedule(rig.Schedule(/*num_requests=*/120, /*seed=*/21));

  // Concurrent monotonicity sampler: hammers stats() while the pipeline and
  // the reload path run, asserting every counter only grows.
  std::atomic<bool> done{false};
  std::atomic<bool> monotone{true};
  std::thread sampler([&] {
    ServerStats last = rig.server->stats();
    while (!done.load(std::memory_order_relaxed)) {
      const ServerStats now = rig.server->stats();
      if (!CountersMonotone(last, now))
        monotone.store(false, std::memory_order_relaxed);
      last = now;
      std::this_thread::yield();
    }
  });

  DriveOptions options;
  options.client_lanes = lanes;
  options.reload_every = 10;  // hot reloads land mid-flight
  options.reload_path = "<in-memory>";
  const DriveReport report = DriveSchedule(rig.server.get(), schedule, options);
  done.store(true, std::memory_order_relaxed);
  sampler.join();
  EXPECT_TRUE(monotone.load(std::memory_order_relaxed));
  EXPECT_GT(report.reload_attempts, 0);
  if (with_failpoints) {
    EXPECT_EQ(report.reload_failures, 1);
  }

  rig.server->Stop();
  const ServerStats stats = rig.server->stats();
  const std::string violation =
      CheckConservation(report, stats, /*stopped=*/true);
  EXPECT_EQ(violation, "");

  // Every response accounted for, and the healthy ones bit-match the
  // direct engine path (generation swaps must be invisible in the scores —
  // the factory rebuilds identical parameters).
  int degraded = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Response& r = report.responses[i];
    if (r.degraded || r.shed || r.rejected) {
      ++degraded;
      continue;
    }
    const auto want = rig.Direct(schedule[i]);
    ASSERT_EQ(r.items.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(r.items[j].first, want[j].first);
      EXPECT_EQ(std::memcmp(&r.items[j].second, &want[j].second,
                            sizeof(double)),
                0);
    }
  }
  if (with_failpoints) {
    // The persistent serve.submit fault alone guarantees degraded traffic.
    EXPECT_GT(degraded, 0);
    EXPECT_GT(stats.rejected, 0);
  }
}

TEST_F(StressTest, SoakSingleLaneSingleWorker) { RunSoak(1, 1, false); }

TEST_F(StressTest, SoakFourLanesSingleWorker) { RunSoak(4, 1, false); }

TEST_F(StressTest, SoakFourLanesFourWorkersUnderFailpoints) {
  RunSoak(4, 4, true);
}

TEST_F(StressTest, SoakTwoLanesFourWorkersUnderFailpoints) {
  RunSoak(2, 4, true);
}

// Reload storm: a dedicated thread swaps generations as fast as it can
// while four lanes drive traffic; zero requests may be lost and every
// healthy response must come from *some* complete generation.
TEST_F(StressTest, ReloadStormNeverDropsARequest) {
  ServeConfig sc;
  sc.workers = 4;
  sc.queue_depth = 16;
  ServeRig rig(sc);
  ASSERT_TRUE(rig.server->Start().ok());

  std::atomic<bool> stop_reloads{false};
  std::thread reloader([&] {
    while (!stop_reloads.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(rig.server->Reload("<in-memory>").ok());
    }
  });

  const std::vector<Request> schedule =
      BuildSchedule(rig.Schedule(/*num_requests=*/160, /*seed=*/33));
  DriveOptions options;
  options.client_lanes = 4;
  const DriveReport report = DriveSchedule(rig.server.get(), schedule, options);
  stop_reloads.store(true, std::memory_order_relaxed);
  reloader.join();

  rig.server->Stop();
  EXPECT_EQ(CheckConservation(report, rig.server->stats(), /*stopped=*/true),
            "");
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Response& r = report.responses[i];
    ASSERT_FALSE(r.shed || r.rejected || r.degraded)
        << FormatRequest(schedule[i]);
    EXPECT_GE(r.generation, 1u);
    const auto want = rig.Direct(schedule[i]);
    ASSERT_EQ(r.items.size(), want.size());
    for (size_t j = 0; j < want.size(); ++j)
      EXPECT_EQ(std::memcmp(&r.items[j].second, &want[j].second,
                            sizeof(double)),
                0);
  }
  EXPECT_GT(rig.server->stats().reloads, 0);
}

// The same storm with IVF retrieval switched on: every generation rebuilds
// its k-means index eagerly inside BuildGeneration — off the serving path,
// before the swap — so hot reloads must keep the zero-dropped-requests
// guarantee, and every response must still bit-match a direct same-config
// IVF engine call even while index-bearing generations swap underneath it.
TEST_F(StressTest, IvfReloadStormNeverDropsARequest) {
  ServeConfig sc;
  sc.workers = 4;
  sc.queue_depth = 16;
  sc.topk = core::TopKMode::kIvf;
  sc.index.nlist = 8;
  sc.index.nprobe = 2;  // genuinely approximate: probe 2 of 8 lists
  ServeRig rig(sc);
  // Mirror the daemon's retrieval setup on the oracle so Direct() is the
  // same-bits IVF answer.
  rig.oracle->inference().set_index_config(sc.index);
  rig.oracle->inference().set_topk_mode(core::TopKMode::kIvf);
  ASSERT_TRUE(rig.server->Start().ok());

  std::atomic<bool> stop_reloads{false};
  std::thread reloader([&] {
    while (!stop_reloads.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(rig.server->Reload("<in-memory>").ok());
    }
  });

  const std::vector<Request> schedule =
      BuildSchedule(rig.Schedule(/*num_requests=*/160, /*seed=*/77));
  DriveOptions options;
  options.client_lanes = 4;
  const DriveReport report = DriveSchedule(rig.server.get(), schedule, options);
  stop_reloads.store(true, std::memory_order_relaxed);
  reloader.join();

  rig.server->Stop();
  EXPECT_EQ(CheckConservation(report, rig.server->stats(), /*stopped=*/true),
            "");
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Response& r = report.responses[i];
    ASSERT_FALSE(r.shed || r.rejected || r.degraded)
        << FormatRequest(schedule[i]);
    EXPECT_GE(r.generation, 1u);
    const auto want = rig.Direct(schedule[i]);
    ASSERT_EQ(r.items.size(), want.size()) << FormatRequest(schedule[i]);
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(r.items[j].first, want[j].first);
      EXPECT_EQ(std::memcmp(&r.items[j].second, &want[j].second,
                            sizeof(double)),
                0);
    }
  }
  EXPECT_GT(rig.server->stats().reloads, 0);
}

// The same storm with the int8 scan switched on: every generation builds
// its quantized user/group rep caches eagerly inside BuildGeneration — off
// the serving path, before the swap — so hot reloads must keep the
// zero-dropped-requests guarantee, and every response must still bit-match
// a direct same-config int8 engine call even while quantized-cache-bearing
// generations swap underneath it.
TEST_F(StressTest, Int8ReloadStormNeverDropsARequest) {
  ServeConfig sc;
  sc.workers = 4;
  sc.queue_depth = 16;
  sc.score = core::ScoreMode::kInt8;
  ServeRig rig(sc);
  // Mirror the daemon's scan precision on the oracle so Direct() is the
  // same-bits int8 answer.
  rig.oracle->inference().set_int8_config(sc.int8);
  rig.oracle->inference().set_score_mode(core::ScoreMode::kInt8);
  ASSERT_TRUE(rig.server->Start().ok());

  std::atomic<bool> stop_reloads{false};
  std::thread reloader([&] {
    while (!stop_reloads.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(rig.server->Reload("<in-memory>").ok());
    }
  });

  const std::vector<Request> schedule =
      BuildSchedule(rig.Schedule(/*num_requests=*/160, /*seed=*/77));
  DriveOptions options;
  options.client_lanes = 4;
  const DriveReport report = DriveSchedule(rig.server.get(), schedule, options);
  stop_reloads.store(true, std::memory_order_relaxed);
  reloader.join();

  rig.server->Stop();
  EXPECT_EQ(CheckConservation(report, rig.server->stats(), /*stopped=*/true),
            "");
  for (size_t i = 0; i < schedule.size(); ++i) {
    const Response& r = report.responses[i];
    ASSERT_FALSE(r.shed || r.rejected || r.degraded)
        << FormatRequest(schedule[i]);
    EXPECT_GE(r.generation, 1u);
    const auto want = rig.Direct(schedule[i]);
    ASSERT_EQ(r.items.size(), want.size()) << FormatRequest(schedule[i]);
    for (size_t j = 0; j < want.size(); ++j) {
      EXPECT_EQ(r.items[j].first, want[j].first);
      EXPECT_EQ(std::memcmp(&r.items[j].second, &want[j].second,
                            sizeof(double)),
                0);
    }
  }
  EXPECT_GT(rig.server->stats().reloads, 0);
}

// Byte-level reproducibility under concurrency: the same seeded schedule
// driven at (1 lane, 1 worker) and (4 lanes, 4 workers) renders the exact
// same drive transcript — responses are a pure function of the request.
TEST_F(StressTest, DriveTranscriptIsByteIdenticalAcrossConcurrency) {
  std::string transcripts[2];
  const int lanes[2] = {1, 4};
  const int workers[2] = {1, 4};
  for (int v = 0; v < 2; ++v) {
    ServeConfig sc;
    sc.workers = workers[v];
    sc.queue_depth = 256;  // no shedding: transcripts must be fault-free
    ServeRig rig(sc);
    ASSERT_TRUE(rig.server->Start().ok());
    const std::vector<Request> schedule =
        BuildSchedule(rig.Schedule(/*num_requests=*/80, /*seed=*/55));
    DriveOptions options;
    options.client_lanes = lanes[v];
    const DriveReport report =
        DriveSchedule(rig.server.get(), schedule, options);
    rig.server->Stop();
    EXPECT_EQ(CheckConservation(report, rig.server->stats(), true), "");
    transcripts[v] = FormatDrive(schedule, report);
  }
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_FALSE(transcripts[0].empty());
}

}  // namespace
}  // namespace groupsa::serve
