#!/usr/bin/env bash
# CI entry point: tier-1 suite under the plain build, then the race-labelled
# tests again under ThreadSanitizer (GROUPSA_SANITIZE=thread) to shake out
# data races in the thread pool, the sharded trainer and the parallel
# kernels.
#
# Usage: tools/ci.sh [jobs]       (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
echo "=== plain ctest (full tier-1 suite) ==="
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "=== inference bench smoke (0-ULP parity gate) ==="
# --quick caps the catalog; the run still exits non-zero if the batched
# engine's scores are not bit-identical to the per-item reference.
./build/bench/bench_inference --quick

echo "=== tsan build ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGROUPSA_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}"
echo "=== tsan ctest (race-labelled tests) ==="
# TSan slows execution ~5-15x, so the sanitizer lane runs only the tests
# that exercise the parallel paths; the full suite already ran above.
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L race

echo "CI OK"
