#!/usr/bin/env bash
# CI entry point, organised as standalone lanes. Each lane configures its own
# build tree if (and only if) it is missing, so any lane can run in isolation
# on a fresh checkout:
#
#   plain         Release build + the full tier-1 ctest suite
#   lint          determinism + lock-discipline linter over src/ (zero
#                 findings required)
#   locks         concurrency-contract gates: lock lint, the DebugMutex
#                 lockdep suite under TSan, clang -Wthread-safety when clang
#                 is installed (visible skip otherwise), and the release
#                 zero-overhead bench gate
#   tidy          clang-tidy over src/ (visible skip when not installed)
#   bench         inference + training bench smokes (bit-parity gates)
#   serving       serving bench smoke (pipeline-vs-engine 0-ULP parity gate)
#   crash         crash-resume determinism gate (SIGKILL mid-training, resume,
#                 byte-compare) at pool widths 1 and 4
#   serve-golden  serve-mode golden gate (train -> checkpoint -> scripted
#                 daemon run, byte-compared at 1x1 vs 4x4 workers/threads)
#                 plus the crash-during-reload gate (SIGKILL mid-swap, restart
#                 from the last good checkpoint)
#   index         IVF retrieval gates: nprobe=nlist exact-parity (0-ULP vs
#                 kExact), recall@10 on the seeded world, and the full
#                 ItemIndex suite under ASan
#   quant         kernel-dispatch + int8 gates: backend parity suite, the
#                 int8 ranking-quality/memory gates, cross-backend training
#                 checkpoints byte-identical at 1 and 4 threads (every
#                 runnable backend via GROUPSA_KERNEL_BACKEND), and the
#                 quantized suites under ASan
#   chaos         resilience gates: the seeded chaos soak (byte-identical
#                 transcripts at 1x1 vs 4x4 workers/threads, extended
#                 conservation, breaker trip + recovery) and the resilience
#                 suite, each under both TSan and ASan
#   asan          fault-labelled tests + tensor-pool suite under ASan
#   tsan          race-labelled tests (thread pool, trainer shards, serving
#                 stress/soak) under TSan
#   ubsan         full suite under UBSan with recovery disabled
#
# Usage: tools/ci.sh [jobs] [lane ...]     (default: nproc jobs, all lanes)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc)"
if [ $# -gt 0 ] && [[ "$1" =~ ^[0-9]+$ ]]; then
  JOBS="$1"
  shift
fi
LANES=("$@")
if [ ${#LANES[@]} -eq 0 ]; then
  LANES=(plain lint locks tidy bench serving crash serve-golden index quant
         chaos asan tsan ubsan)
fi

# Configure a build tree only when its cache does not exist yet, so a lane
# reuses whatever an earlier lane (or the developer) already configured.
ensure_build() {
  local dir="$1"
  shift
  if [ ! -f "${dir}/CMakeCache.txt" ]; then
    cmake -B "${dir}" -S . "$@"
  fi
}

TMP_DIRS=()
cleanup() {
  # `[ -n ... ] && rm` would leave the trap (and so the script) with exit
  # status 1 when a lane created no temp dirs; an explicit if does not.
  for dir in "${TMP_DIRS[@]:-}"; do
    if [ -n "${dir}" ]; then rm -rf "${dir}"; fi
  done
}
trap cleanup EXIT

lane_plain() {
  echo "=== plain build ==="
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}"
  echo "=== plain ctest (full tier-1 suite) ==="
  ctest --test-dir build --output-on-failure -j "${JOBS}"
}

lane_lint() {
  echo "=== lint lane (determinism + lock-discipline linter over src/) ==="
  # Zero findings required; reviewed exceptions live in tools/lint_allow.txt
  # and stale allowlist entries are findings themselves (--prune-stale
  # rewrites the list instead of failing).
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target groupsa_lint
  ./build/tools/groupsa_lint --allowlist tools/lint_allow.txt src/
}

lane_locks() {
  echo "=== locks lane (lock-discipline lint over src/) ==="
  # The lint lane already runs these rules too (groupsa_lint is one pass);
  # repeating them here keeps the locks lane self-contained when run alone.
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target groupsa_lint
  ./build/tools/groupsa_lint --allowlist tools/lint_allow.txt src/

  echo "=== locks lane (DebugMutex lockdep suite under TSan) ==="
  # The sanitizer tree forces GROUPSA_DEBUG_MUTEX_FORCE on, so the detector
  # is live even though the tree builds with NDEBUG; the suite would
  # visibly self-skip in a tree where it is not.
  ensure_build build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPSA_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
    -R 'DebugMutex'

  echo "=== locks lane (clang -Wthread-safety static check) ==="
  # The textual lock lint approximates what clang's thread-safety analysis
  # proves semantically from the same GROUPSA_* annotations; when a clang is
  # available, run the real thing over every annotated translation unit.
  # The image ships gcc only, so this degrades to a visible skip.
  if command -v clang++ > /dev/null 2>&1; then
    local tu
    for tu in src/common/debug_mutex.cc src/common/thread_pool.cc \
              src/common/failpoint.cc src/serve/circuit_breaker.cc \
              src/serve/server.cc src/core/inference_engine.cc; do
      echo "--- clang++ -Wthread-safety ${tu} ---"
      # No SIMD flags needed: intrinsics are confined to the per-ISA TUs
      # under src/tensor/backends/ (enforced by the simd-confined lint rule).
      clang++ -std=c++20 -fsyntax-only -Isrc \
        -Wthread-safety -Werror=thread-safety "${tu}"
    done
  else
    echo "clang++ not installed; skipping -Wthread-safety check"
  fi

  echo "=== locks lane (release zero-overhead gate: bench_serving --quick) ==="
  # Release DebugMutex must be a bare std::mutex (static_assert'd for
  # layout); this bench run gates the behavioral half — steady QPS/p50 and
  # the 0-ULP parity checks on the serving hot path, where every request
  # crosses the queue, slot and breaker locks.
  cmake --build build -j "${JOBS}" --target bench_serving
  ./build/bench/bench_serving --quick
}

lane_tidy() {
  echo "=== clang-tidy lane ==="
  # The image ships gcc only; when clang-tidy is absent the lane degrades to
  # a visible skip rather than silently passing.
  if command -v clang-tidy > /dev/null 2>&1; then
    ensure_build build -DCMAKE_BUILD_TYPE=Release
    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    git ls-files 'src/*.cc' | xargs clang-tidy -p build --quiet
  else
    echo "clang-tidy not installed; skipping tidy lane"
  fi
}

lane_bench() {
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target bench_inference bench_training
  echo "=== inference bench smoke (0-ULP parity gate) ==="
  # --quick caps the catalog; the run still exits non-zero if the batched
  # engine's scores are not bit-identical to the per-item reference.
  ./build/bench/bench_inference --quick
  echo "=== training bench smoke (pooled/unpooled parity gate) ==="
  # --quick caps the world and schedule; the run still exits non-zero if
  # pooled training's parameters are not byte-identical to unpooled's, at
  # one and four threads.
  ./build/bench/bench_training --quick
}

lane_serving() {
  echo "=== serving bench smoke (pipeline parity + overload paths) ==="
  # --quick trims the request counts; the run still exits non-zero if the
  # concurrent pipeline's responses are not bit-identical to direct
  # InferenceEngine calls.
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target bench_serving
  ./build/bench/bench_serving --quick
}

lane_crash() {
  echo "=== crash-resume determinism gate ==="
  # Train the tiny world to completion, then repeat the run with a failpoint
  # that SIGKILLs the process mid-schedule, resume from the surviving
  # snapshot and require the final model checkpoint AND the final training
  # snapshot (parameters + Adam moments + RNG stream) to be byte-identical
  # to the uninterrupted run's — at pool widths 1 and 4.
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target groupsa_cli
  local crash_dir
  crash_dir="$(mktemp -d)"
  TMP_DIRS+=("${crash_dir}")
  ./build/tools/groupsa_cli generate --out "${crash_dir}" --preset tiny \
    > /dev/null
  for threads in 1 4; do
    echo "--- crash-resume @ ${threads} thread(s) ---"
    local ref="${crash_dir}/ref_t${threads}"
    local crash="${crash_dir}/crash_t${threads}"
    ./build/tools/groupsa_cli train --data "${crash_dir}" --epochs 2 \
      --threads "${threads}" --model "${ref}.ckpt" \
      --snapshot "${ref}.snap" --snapshot_every 1 > /dev/null
    # The killed run must actually die by SIGKILL (shell exit code 137).
    set +e
    GROUPSA_FAILPOINTS="trainer.batch=kill@7" \
      ./build/tools/groupsa_cli train --data "${crash_dir}" --epochs 2 \
        --threads "${threads}" --model "${crash}.ckpt" \
        --snapshot "${crash}.snap" --snapshot_every 1 > /dev/null 2>&1
    local kill_rc=$?
    set -e
    if [ "${kill_rc}" -ne 137 ]; then
      echo "FAIL: killed run exited with ${kill_rc}, expected SIGKILL (137)" >&2
      exit 1
    fi
    ./build/tools/groupsa_cli train --data "${crash_dir}" --epochs 2 \
      --threads "${threads}" --model "${crash}.ckpt" \
      --snapshot "${crash}.snap" --snapshot_every 1 --resume > /dev/null
    cmp "${ref}.ckpt" "${crash}.ckpt"
    cmp "${ref}.snap" "${crash}.snap"
  done
  echo "crash-resume gate OK"
}

lane_serve_golden() {
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}" --target groupsa_cli groupsa_serve
  local serve_dir
  serve_dir="$(mktemp -d)"
  TMP_DIRS+=("${serve_dir}")
  ./build/tools/groupsa_cli generate --out "${serve_dir}" --preset tiny \
    > /dev/null
  ./build/tools/groupsa_cli train --data "${serve_dir}" --epochs 1 \
    --model "${serve_dir}/model.ckpt" > /dev/null

  echo "=== serve-mode golden gate (1x1 vs 4x4 workers/threads) ==="
  # The same scripted session must render byte-identical responses at any
  # worker or thread width; only the "<request> -> <response>" lines are
  # compared (the banner prints the width).
  cat > "${serve_dir}/session.txt" <<'EOF'
user 3 5 x
user 17 8
group 7 5
group 21 3 x
members 1,2,3 4 x
members 40,41 6
reload
user 3 5 x
group 7 5
stats
quit
EOF
  for mode in "1 1" "4 4"; do
    read -r workers threads <<< "${mode}"
    ./build/tools/groupsa_serve --data "${serve_dir}" \
      --model "${serve_dir}/model.ckpt" --workers "${workers}" \
      --threads "${threads}" --strict --script "${serve_dir}/session.txt" \
      | grep ' -> ' > "${serve_dir}/golden_w${workers}_t${threads}.txt"
  done
  cmp "${serve_dir}/golden_w1_t1.txt" "${serve_dir}/golden_w4_t4.txt"
  echo "serve-mode golden gate OK"

  echo "=== crash-during-reload gate ==="
  # A SIGKILL in the middle of the generation swap must not corrupt
  # anything: the staged generation is process-local and the checkpoint on
  # disk is still the last good state, so a restarted daemon serves the
  # exact same responses as an undisturbed run.
  cat > "${serve_dir}/reload_session.txt" <<'EOF'
user 3 5 x
reload
user 3 5 x
quit
EOF
  set +e
  # stdbuf keeps stdout line-buffered so the pre-reload response survives
  # the SIGKILL (a block-buffered daemon would lose it with the process).
  GROUPSA_FAILPOINTS="serve.reload.swap=kill@1" \
    stdbuf -oL ./build/tools/groupsa_serve --data "${serve_dir}" \
      --model "${serve_dir}/model.ckpt" --workers 2 --strict \
      --script "${serve_dir}/reload_session.txt" \
      > "${serve_dir}/killed_run.txt" 2>&1
  local kill_rc=$?
  set -e
  if [ "${kill_rc}" -ne 137 ]; then
    echo "FAIL: reload-kill run exited with ${kill_rc}, expected 137" >&2
    exit 1
  fi
  # The daemon died mid-swap after answering the first request.
  if ! grep -q ' -> ' "${serve_dir}/killed_run.txt"; then
    echo "FAIL: killed daemon never answered the pre-reload request" >&2
    exit 1
  fi
  # Restart against the same on-disk checkpoint: the full session (including
  # the reload that killed the previous process) must now complete and its
  # responses must match the undisturbed golden run's for the same requests.
  ./build/tools/groupsa_serve --data "${serve_dir}" \
    --model "${serve_dir}/model.ckpt" --workers 2 --strict \
    --script "${serve_dir}/reload_session.txt" \
    | grep ' -> ' > "${serve_dir}/restarted_run.txt"
  grep '^user 3 k=5 x=1' "${serve_dir}/golden_w1_t1.txt" | head -1 \
    > "${serve_dir}/want_line.txt"
  # Both the pre-reload and post-reload answers of the restarted run must
  # carry the same items/scores as the golden run (generation differs).
  local want got
  want="$(sed 's/.*items=//' "${serve_dir}/want_line.txt")"
  while IFS= read -r line; do
    got="$(printf '%s\n' "${line}" | sed 's/.*items=//')"
    if [ "${got}" != "${want}" ]; then
      echo "FAIL: restarted daemon diverged: ${got} != ${want}" >&2
      exit 1
    fi
  done < <(grep '^user 3 k=5 x=1' "${serve_dir}/restarted_run.txt")
  echo "crash-during-reload gate OK"
}

lane_index() {
  echo "=== index lane (IVF retrieval gates) ==="
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  # Full build, not --target: with a pre-existing tree the make-level cmake
  # regen rule does not fire for a target the stale cache has never seen.
  cmake --build build -j "${JOBS}"
  # Exact-parity gate: with nprobe = nlist the candidate set is the whole
  # catalog and every IVF answer must be 0-ULP identical to TopKMode::kExact
  # — through the engine, the fast recommender, and across thread counts.
  ctest --test-dir build --output-on-failure -j "${JOBS}" \
    -R 'FullProbeBitIdenticalToExact'
  # Recall gate: at a genuinely approximate nprobe the IVF top-10 must keep
  # recall@10 above the floor on the seeded synthetic world (deterministic,
  # so a drop is a regression, not noise).
  ctest --test-dir build --output-on-failure -j "${JOBS}" \
    -R 'RecallAtTenOnSeededWorld'
  echo "=== index lane (ItemIndex suite under ASan) ==="
  ensure_build build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPSA_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
    -R 'ItemIndex'
}

lane_quant() {
  echo "=== quant lane (kernel-backend parity + int8 suites) ==="
  ensure_build build -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j "${JOBS}"
  # Backend bit-identity on every kernel in the dispatch table, the int8
  # quantizer edge cases, and the int8 serving-path gates (HR@10/NDCG@10
  # within 1% of exact, >= 3.5x rep-cache memory reduction, invalidation
  # after optimizer steps, IVF composition).
  ctest --test-dir build --output-on-failure -j "${JOBS}" \
    -R 'KernelBackendTest|QuantizedTest|Int8ModeTest'

  echo "=== quant lane (cross-backend training checkpoint parity) ==="
  # Train the tiny world end to end under each runnable backend (forced via
  # GROUPSA_KERNEL_BACKEND) at 1 and 4 threads; every checkpoint must be
  # byte-identical to the scalar reference. This is the strongest form of
  # the bit-identity contract: millions of kernel invocations with zero
  # accumulated divergence, not just single-call parity.
  local quant_dir
  quant_dir="$(mktemp -d)"
  TMP_DIRS+=("${quant_dir}")
  ./build/tools/groupsa_cli generate --out "${quant_dir}" --preset tiny \
    > /dev/null
  local backends
  backends="$(./build/tools/groupsa_cli kernels)"
  echo "runnable backends: ${backends//$'\n'/ }"
  local backend threads ckpt
  for threads in 1 4; do
    for backend in ${backends}; do
      ckpt="${quant_dir}/ckpt_${backend}_t${threads}.ckpt"
      GROUPSA_KERNEL_BACKEND="${backend}" \
        ./build/tools/groupsa_cli train --data "${quant_dir}" --epochs 2 \
          --threads "${threads}" --model "${ckpt}" > /dev/null
      md5sum "${ckpt}"
      cmp "${quant_dir}/ckpt_scalar_t${threads}.ckpt" "${ckpt}"
    done
  done
  echo "cross-backend checkpoint parity OK"

  echo "=== quant lane (quantized suites under ASan) ==="
  # The quantized rep caches hand out raw int8 row pointers and the engine
  # swaps QuantState snapshots under concurrent readers; ASan guards the
  # ownership story.
  ensure_build build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPSA_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
    -R 'KernelBackendTest|QuantizedTest|Int8ModeTest'
}

lane_chaos() {
  # The chaos soak's assertions (transcript byte-identity across widths,
  # submitted == admitted + shed + rejected + expired, zero dead workers,
  # breaker trips then recovers) live in the tests; this lane's job is to
  # run them under both sanitizers so a rescue-path race or a leaked
  # promise cannot hide behind a green plain run.
  echo "=== chaos lane (TSan) ==="
  ensure_build build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPSA_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" \
    -R 'ChaosTest|ResilienceTest'
  echo "=== chaos lane (ASan) ==="
  ensure_build build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPSA_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
    -R 'ChaosTest|ResilienceTest'
}

lane_asan() {
  echo "=== asan build ==="
  ensure_build build-asan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPSA_SANITIZE=address
  cmake --build build-asan -j "${JOBS}"
  echo "=== asan ctest (fault-labelled tests) ==="
  # The fault suite injects I/O errors, poisons batches and SIGKILLs
  # children mid-write; ASan guards the recovery paths against leaks and UB.
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L fault
  echo "=== asan ctest (tensor-pool allocation suite) ==="
  # The pool hands recycled storage back to the ops; ASan verifies nothing
  # in the steady-state loop reads stale bytes or leaks escaped tensors.
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
    -R 'TrainerPoolTest|TensorPoolTest'
  echo "=== asan ctest (serving suite) ==="
  # The serving daemon's queue, degrade and reload paths under ASan: no
  # leaked promises, no use-after-free across generation swaps.
  ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
    -R 'ServerTest|StressTest|ServeGoldenTest'
}

lane_tsan() {
  echo "=== tsan build ==="
  ensure_build build-tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPSA_SANITIZE=thread
  cmake --build build-tsan -j "${JOBS}"
  echo "=== tsan ctest (race-labelled tests) ==="
  # TSan slows execution ~5-15x, so the sanitizer lane runs only the tests
  # that exercise the parallel paths (thread pool, sharded trainer, parallel
  # kernels, and the serving daemon's stress/soak suite); the full suite
  # already ran in the plain lane.
  ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L race
}

lane_ubsan() {
  echo "=== ubsan build ==="
  ensure_build build-ubsan -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGROUPSA_SANITIZE=undefined
  cmake --build build-ubsan -j "${JOBS}"
  echo "=== ubsan ctest (full suite, -fno-sanitize-recover=all) ==="
  # UBSan's overhead is small enough to run everything; recovery is disabled
  # at compile time, so one UB report anywhere aborts the test that hit it.
  ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}"
}

for lane in "${LANES[@]}"; do
  case "${lane}" in
    plain) lane_plain ;;
    lint) lane_lint ;;
    locks) lane_locks ;;
    tidy) lane_tidy ;;
    bench) lane_bench ;;
    serving) lane_serving ;;
    crash) lane_crash ;;
    serve-golden) lane_serve_golden ;;
    index) lane_index ;;
    quant) lane_quant ;;
    chaos) lane_chaos ;;
    asan) lane_asan ;;
    tsan) lane_tsan ;;
    ubsan) lane_ubsan ;;
    *)
      echo "unknown lane: ${lane}" >&2
      exit 2
      ;;
  esac
done

echo "CI OK"
