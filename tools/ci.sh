#!/usr/bin/env bash
# CI entry point: tier-1 suite under the plain build, the determinism linter
# and clang-tidy lanes over src/, a crash-resume determinism gate (real
# SIGKILL mid-training via failpoints, resume, byte compare), the
# fault-labelled tests again under AddressSanitizer, the race-labelled tests
# under ThreadSanitizer (GROUPSA_SANITIZE=thread) to shake out data races in
# the thread pool, the sharded trainer and the parallel kernels, and the
# full suite once more under UBSan (GROUPSA_SANITIZE=undefined) with
# recovery disabled, so any undefined behaviour on a tested path fails CI.
#
# Usage: tools/ci.sh [jobs]       (default: nproc)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "=== plain build ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "${JOBS}"
echo "=== plain ctest (full tier-1 suite) ==="
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "=== lint lane (determinism linter over src/) ==="
# Zero findings required; reviewed exceptions live in tools/lint_allow.txt
# and stale allowlist entries are findings themselves.
./build/tools/groupsa_lint --allowlist tools/lint_allow.txt src/

echo "=== clang-tidy lane ==="
# The image ships gcc only; when clang-tidy is absent the lane degrades to a
# visible skip rather than silently passing.
if command -v clang-tidy > /dev/null 2>&1; then
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  git ls-files 'src/*.cc' | xargs clang-tidy -p build --quiet
else
  echo "clang-tidy not installed; skipping tidy lane"
fi

echo "=== inference bench smoke (0-ULP parity gate) ==="
# --quick caps the catalog; the run still exits non-zero if the batched
# engine's scores are not bit-identical to the per-item reference.
./build/bench/bench_inference --quick

echo "=== training bench smoke (pooled/unpooled parity gate) ==="
# --quick caps the world and schedule; the run still exits non-zero if
# pooled training's parameters are not byte-identical to unpooled's, at one
# and four threads.
./build/bench/bench_training --quick

echo "=== crash-resume determinism gate ==="
# Train the tiny world to completion, then repeat the run with a failpoint
# that SIGKILLs the process mid-schedule, resume from the surviving snapshot
# and require the final model checkpoint AND the final training snapshot
# (parameters + Adam moments + RNG stream) to be byte-identical to the
# uninterrupted run's — at pool widths 1 and 4.
CRASH_DIR="$(mktemp -d)"
trap 'rm -rf "${CRASH_DIR}"' EXIT
./build/tools/groupsa_cli generate --out "${CRASH_DIR}" --preset tiny \
  > /dev/null
for THREADS in 1 4; do
  echo "--- crash-resume @ ${THREADS} thread(s) ---"
  REF="${CRASH_DIR}/ref_t${THREADS}"
  CRASH="${CRASH_DIR}/crash_t${THREADS}"
  ./build/tools/groupsa_cli train --data "${CRASH_DIR}" --epochs 2 \
    --threads "${THREADS}" --model "${REF}.ckpt" \
    --snapshot "${REF}.snap" --snapshot_every 1 > /dev/null
  # The killed run must actually die by SIGKILL (shell exit code 137).
  set +e
  GROUPSA_FAILPOINTS="trainer.batch=kill@7" \
    ./build/tools/groupsa_cli train --data "${CRASH_DIR}" --epochs 2 \
      --threads "${THREADS}" --model "${CRASH}.ckpt" \
      --snapshot "${CRASH}.snap" --snapshot_every 1 > /dev/null 2>&1
  KILL_RC=$?
  set -e
  if [ "${KILL_RC}" -ne 137 ]; then
    echo "FAIL: killed run exited with ${KILL_RC}, expected SIGKILL (137)" >&2
    exit 1
  fi
  ./build/tools/groupsa_cli train --data "${CRASH_DIR}" --epochs 2 \
    --threads "${THREADS}" --model "${CRASH}.ckpt" \
    --snapshot "${CRASH}.snap" --snapshot_every 1 --resume > /dev/null
  cmp "${REF}.ckpt" "${CRASH}.ckpt"
  cmp "${REF}.snap" "${CRASH}.snap"
done
echo "crash-resume gate OK"

echo "=== asan build ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGROUPSA_SANITIZE=address
cmake --build build-asan -j "${JOBS}"
echo "=== asan ctest (fault-labelled tests) ==="
# The fault suite injects I/O errors, poisons batches and SIGKILLs children
# mid-write; ASan guards the recovery paths against leaks and UB.
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" -L fault
echo "=== asan ctest (tensor-pool allocation suite) ==="
# The pool hands recycled storage back to the ops; ASan verifies nothing in
# the steady-state loop reads stale bytes or leaks escaped tensors.
ctest --test-dir build-asan --output-on-failure -j "${JOBS}" \
  -R 'TrainerPoolTest|TensorPoolTest'

echo "=== tsan build ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGROUPSA_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}"
echo "=== tsan ctest (race-labelled tests) ==="
# TSan slows execution ~5-15x, so the sanitizer lane runs only the tests
# that exercise the parallel paths; the full suite already ran above.
ctest --test-dir build-tsan --output-on-failure -j "${JOBS}" -L race

echo "=== ubsan build ==="
cmake -B build-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGROUPSA_SANITIZE=undefined
cmake --build build-ubsan -j "${JOBS}"
echo "=== ubsan ctest (full suite, -fno-sanitize-recover=all) ==="
# UBSan's overhead is small enough to run everything; recovery is disabled
# at compile time, so one UB report anywhere aborts the test that hit it.
ctest --test-dir build-ubsan --output-on-failure -j "${JOBS}"

echo "CI OK"
