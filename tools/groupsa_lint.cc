// Determinism + concurrency linter for the GroupSA source tree.
//
//   groupsa_lint [--allowlist <file>|none] [--cmake <file>] [--prune-stale]
//                <dir|file>...
//
// Scans every .h/.cc under the given paths with the rules in
// analysis/source_lint.h (banned wall-clock reads, ad-hoc randomness, naked
// threads, naked mutexes, raw new/delete, order-sensitive unordered
// iteration, unguarded SIMD translation units) and analysis/lock_lint.h
// (unannotated mutex-adjacent members, guarded writes outside a lock scope,
// cycles in the declared lock-acquisition order) and prints findings as
// "file:line: [rule] message". Exit status: 0 clean, 1 findings, 2 usage or
// I/O error.
//
// The allowlist (default tools/lint_allow.txt when present) silences
// reviewed exceptions; stale entries are themselves findings, so the list
// can only shrink when the code it excuses goes away. --prune-stale rewrites
// the allowlist in place, dropping the stale entries instead of reporting
// them. The fp-contract rule checks the GROUPSA_KERNEL_GUARD_FLAGS contract
// in --cmake (default <dir>/CMakeLists.txt of the first scanned directory),
// and simd-confined keeps intrinsics/ISA-#ifdef code inside
// src/tensor/backends/.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lock_lint.h"
#include "analysis/source_lint.h"

namespace fs = std::filesystem;
using groupsa::analysis::Allowlist;
using groupsa::analysis::LintFinding;

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

int Usage() {
  std::fprintf(stderr,
               "usage: groupsa_lint [--allowlist <file>|none] "
               "[--cmake <file>] [--prune-stale] <dir|file>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string allow_path;
  bool allow_disabled = false;
  bool prune_stale = false;
  std::string cmake_path;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allowlist") {
      if (++i >= argc) return Usage();
      if (std::string(argv[i]) == "none") {
        allow_disabled = true;
      } else {
        allow_path = argv[i];
      }
    } else if (arg == "--prune-stale") {
      prune_stale = true;
    } else if (arg == "--cmake") {
      if (++i >= argc) return Usage();
      cmake_path = argv[i];
    } else if (arg == "--help" || arg == "-h" || arg[0] == '-') {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return Usage();

  // Gather the file set, sorted so output and allowlist matching never
  // depend on directory enumeration order.
  std::vector<std::pair<std::string, std::string>> files;  // path, content
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file() && IsSourceFile(it->path()))
          files.emplace_back(it->path().generic_string(), "");
      }
      if (cmake_path.empty()) {
        const fs::path candidate = fs::path(root) / "CMakeLists.txt";
        if (fs::exists(candidate, ec)) cmake_path = candidate.generic_string();
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.emplace_back(fs::path(root).generic_string(), "");
    } else {
      std::fprintf(stderr, "groupsa_lint: no such file or directory: %s\n",
                   root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  for (auto& [path, content] : files) {
    if (!ReadFile(path, &content)) {
      std::fprintf(stderr, "groupsa_lint: cannot read %s\n", path.c_str());
      return 2;
    }
  }

  // Pass 1: union of unordered-container names across the whole tree, so a
  // member declared in one header is recognized at its use sites elsewhere.
  std::set<std::string> unordered_names;
  for (const auto& [path, content] : files) {
    groupsa::analysis::CollectUnorderedNames(
        groupsa::analysis::StripCommentsAndStrings(content),
        &unordered_names);
  }

  // Pass 2: per-file rules, then the cross-file SIMD guard-list rule.
  std::vector<LintFinding> findings;
  for (const auto& [path, content] : files) {
    std::vector<LintFinding> file_findings =
        groupsa::analysis::LintSource(path, content, unordered_names);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  if (!cmake_path.empty()) {
    std::string cmake_content;
    if (!ReadFile(cmake_path, &cmake_content)) {
      std::fprintf(stderr, "groupsa_lint: cannot read %s\n",
                   cmake_path.c_str());
      return 2;
    }
    std::vector<LintFinding> simd = groupsa::analysis::LintSimdGuardList(
        cmake_path, cmake_content, files);
    findings.insert(findings.end(), simd.begin(), simd.end());
  }

  // Cross-file lock-discipline rules (analysis/lock_lint.h).
  {
    std::vector<LintFinding> locks = groupsa::analysis::LintLocks(files);
    findings.insert(findings.end(), locks.begin(), locks.end());
  }

  if (allow_path.empty() && !allow_disabled) {
    std::error_code ec;
    if (fs::exists("tools/lint_allow.txt", ec))
      allow_path = "tools/lint_allow.txt";
  }
  if (!allow_path.empty()) {
    std::string allow_content;
    if (!ReadFile(allow_path, &allow_content)) {
      std::fprintf(stderr, "groupsa_lint: cannot read allowlist %s\n",
                   allow_path.c_str());
      return 2;
    }
    Allowlist allow;
    if (groupsa::Status s = Allowlist::Parse(allow_content, &allow);
        !s.ok()) {
      std::fprintf(stderr, "groupsa_lint: %s: %s\n", allow_path.c_str(),
                   s.message().c_str());
      return 2;
    }
    if (prune_stale) {
      // Rewrite the allowlist against the PRE-allowlist findings, so every
      // surviving entry provably excuses something; then re-parse so the
      // normal stale-allowlist check runs (and passes) on the pruned list.
      const std::string pruned = groupsa::analysis::PruneAllowlist(
          allow_content, allow, findings);
      if (pruned != allow_content) {
        std::ofstream rewrite(allow_path, std::ios::binary | std::ios::trunc);
        if (!rewrite || !(rewrite << pruned)) {
          std::fprintf(stderr, "groupsa_lint: cannot rewrite allowlist %s\n",
                       allow_path.c_str());
          return 2;
        }
        rewrite.close();
        std::fprintf(stderr, "groupsa_lint: pruned stale entries from %s\n",
                     allow_path.c_str());
        allow = Allowlist();
        if (groupsa::Status s = Allowlist::Parse(pruned, &allow); !s.ok()) {
          std::fprintf(stderr, "groupsa_lint: %s: %s\n", allow_path.c_str(),
                       s.message().c_str());
          return 2;
        }
      }
    }
    findings = groupsa::analysis::ApplyAllowlist(std::move(findings), allow,
                                                 allow_path);
  }

  std::sort(findings.begin(), findings.end(),
            [](const LintFinding& a, const LintFinding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const LintFinding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("groupsa_lint: %zu finding(s) in %zu file(s) scanned\n",
                findings.size(), files.size());
    return 1;
  }
  return 0;
}
