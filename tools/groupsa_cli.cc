// groupsa_cli — command-line front end to the library.
//
//   groupsa_cli generate --out DIR [--preset yelp|douban|tiny] [--seed N]
//       Generate a synthetic world and write it as TSV files.
//   groupsa_cli stats --data DIR
//       Print Table-I-style statistics of a stored dataset.
//   groupsa_cli train --data DIR --model FILE [--epochs N] [--seed N]
//       Train GroupSA on a stored dataset and save a checkpoint.
//   groupsa_cli evaluate --data DIR --model FILE [--candidates N]
//       Evaluate a checkpoint with the paper's ranking protocol.
//
// All commands accept --threads N to size the global thread pool (default:
// GROUPSA_THREADS env or 1). Training and evaluation results are
// bit-identical at any thread count.
//   groupsa_cli recommend --data DIR --model FILE --members 1,2,3 [--top K]
//       Score the catalog for an ad-hoc group and print the Top-K items.
//
// The train/evaluate/recommend commands re-derive the split and TF-IDF
// neighbourhoods deterministically from --seed, so a saved model and its
// evaluation always agree.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/trainer.h"
#include "data/io.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tfidf.h"
#include "eval/evaluator.h"
#include "nn/checkpoint.h"

using namespace groupsa;

namespace {

// Minimal --key value / --key=value parser.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// Everything train/evaluate/recommend share: dataset, split, neighbourhoods.
struct LoadedWorkspace {
  data::Dataset dataset;
  data::Split ui;
  data::Split gi;
  data::InteractionMatrix ui_train;
  data::InteractionMatrix gi_train;
  core::ModelData model_data;
  core::GroupSaConfig config;
};

bool LoadWorkspace(const std::string& dir, uint64_t seed,
                   LoadedWorkspace* ws) {
  if (Status s = data::LoadDataset(dir, &ws->dataset); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return false;
  }
  Rng rng(seed);
  ws->ui = data::SplitEdges(ws->dataset.user_item, 0.2, 0.1, &rng);
  ws->gi = data::GlobalSplitEdges(ws->dataset.group_item, 0.2, 0.1, &rng);
  ws->ui_train = data::InteractionMatrix(ws->dataset.num_users,
                                         ws->dataset.num_items, ws->ui.train);
  ws->gi_train = data::InteractionMatrix(ws->dataset.groups.num_groups(),
                                         ws->dataset.num_items, ws->gi.train);
  ws->config = core::GroupSaConfig::Default();
  ws->model_data.groups = &ws->dataset.groups;
  ws->model_data.social = &ws->dataset.social;
  ws->model_data.top_items =
      data::TopItemsPerUser(ws->ui_train, ws->config.top_h);
  ws->model_data.top_friends =
      data::TopFriendsPerUser(ws->dataset.social, ws->config.top_h);
  return true;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return Fail("generate requires --out DIR");
  const std::string preset = FlagOr(flags, "preset", "yelp");
  data::SyntheticWorldConfig config;
  if (preset == "yelp") {
    config = data::SyntheticWorldConfig::YelpLike();
  } else if (preset == "douban") {
    config = data::SyntheticWorldConfig::DoubanEventLike();
  } else if (preset == "tiny") {
    config = data::SyntheticWorldConfig::Tiny();
  } else {
    return Fail("unknown preset: " + preset);
  }
  config.seed = std::strtoull(FlagOr(flags, "seed", "7").c_str(), nullptr, 10);
  const data::SyntheticWorld world = data::GenerateWorld(config);
  if (Status s = data::SaveDataset(world.dataset, out); !s.ok())
    return Fail(s.message());
  std::printf("wrote %s world to %s\n%s\n", config.name.c_str(), out.c_str(),
              world.dataset.ComputeStats().ToString().c_str());
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  if (dir.empty()) return Fail("stats requires --data DIR");
  data::Dataset dataset;
  if (Status s = data::LoadDataset(dir, &dataset); !s.ok())
    return Fail(s.message());
  std::printf("%s\n", dataset.ComputeStats().ToString().c_str());
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (dir.empty() || model_path.empty())
    return Fail("train requires --data DIR and --model FILE");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  LoadedWorkspace ws;
  if (!LoadWorkspace(dir, seed, &ws)) return 1;
  const int epochs = std::atoi(FlagOr(flags, "epochs", "8").c_str());
  ws.config.user_epochs = epochs;
  ws.config.group_epochs = epochs;

  Rng rng(seed + 1);
  core::GroupSaModel model(ws.config, ws.dataset.num_users,
                           ws.dataset.num_items, ws.model_data, &rng);
  std::printf("training GroupSA (%lld parameters, %d+%d epochs)...\n",
              static_cast<long long>(model.NumParameterScalars()), epochs,
              epochs);
  core::Trainer trainer(&model, ws.ui.train, ws.gi.train, &ws.ui_train,
                        &ws.gi_train, &rng);
  trainer.Fit(/*verbose=*/true);
  if (Status s = nn::SaveParameters(model.Parameters(), model_path); !s.ok())
    return Fail(s.message());
  std::printf("saved checkpoint to %s\n", model_path.c_str());
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (dir.empty() || model_path.empty())
    return Fail("evaluate requires --data DIR and --model FILE");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  LoadedWorkspace ws;
  if (!LoadWorkspace(dir, seed, &ws)) return 1;
  Rng rng(seed + 1);
  core::GroupSaModel model(ws.config, ws.dataset.num_users,
                           ws.dataset.num_items, ws.model_data, &rng);
  if (Status s = nn::LoadParameters(model.Parameters(), model_path); !s.ok())
    return Fail(s.message());

  const int candidates =
      std::atoi(FlagOr(flags, "candidates", "100").c_str());
  Rng eval_rng(seed + 2);
  const data::InteractionMatrix ui_all = ws.dataset.UserItemMatrix();
  const data::InteractionMatrix gi_all = ws.dataset.GroupItemMatrix();
  const auto user_cases =
      eval::BuildRankingCases(ws.ui.test, ui_all, candidates, &eval_rng);
  const auto group_cases =
      eval::BuildRankingCases(ws.gi.test, gi_all, candidates, &eval_rng);
  const eval::EvalResult user = eval::EvaluateRanking(
      user_cases,
      [&](int32_t u, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForUser(u, items);
      },
      {5, 10});
  const eval::EvalResult group = eval::EvaluateRanking(
      group_cases,
      [&](int32_t g, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForGroup(g, items);
      },
      {5, 10});
  std::printf("user task:  %s\ngroup task: %s\n", user.ToString().c_str(),
              group.ToString().c_str());
  return 0;
}

int CmdRecommend(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  const std::string members_flag = FlagOr(flags, "members", "");
  if (dir.empty() || model_path.empty() || members_flag.empty())
    return Fail("recommend requires --data DIR --model FILE --members a,b,c");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  LoadedWorkspace ws;
  if (!LoadWorkspace(dir, seed, &ws)) return 1;
  Rng rng(seed + 1);
  core::GroupSaModel model(ws.config, ws.dataset.num_users,
                           ws.dataset.num_items, ws.model_data, &rng);
  if (Status s = nn::LoadParameters(model.Parameters(), model_path); !s.ok())
    return Fail(s.message());

  std::vector<data::UserId> members;
  for (const std::string& token : StrSplit(members_flag, ',')) {
    if (token.empty()) continue;
    const int user = std::atoi(token.c_str());
    if (user < 0 || user >= ws.dataset.num_users)
      return Fail("member id out of range: " + token);
    members.push_back(user);
  }
  if (members.empty()) return Fail("no valid member ids in --members");

  const int top_k = std::atoi(FlagOr(flags, "top", "10").c_str());
  std::vector<data::ItemId> all_items(ws.dataset.num_items);
  for (int v = 0; v < ws.dataset.num_items; ++v) all_items[v] = v;
  const auto scores = model.ScoreItemsForMembers(members, all_items);
  std::vector<std::pair<data::ItemId, double>> ranked;
  for (size_t v = 0; v < scores.size(); ++v)
    ranked.emplace_back(static_cast<data::ItemId>(v), scores[v]);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("Top-%d for group {%s}:\n", top_k, members_flag.c_str());
  for (int i = 0; i < top_k && i < static_cast<int>(ranked.size()); ++i)
    std::printf("  item #%-5d score %.4f\n", ranked[i].first,
                ranked[i].second);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: groupsa_cli <generate|stats|train|evaluate|"
                 "recommend> [flags]\n");
    return 1;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  // --threads N sizes the global pool for every command (train, evaluate,
  // recommend); results are bit-identical at any width.
  if (const int threads = std::atoi(FlagOr(flags, "threads", "0").c_str());
      threads > 0) {
    parallel::SetGlobalThreads(threads);
  }
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "recommend") return CmdRecommend(flags);
  return Fail("unknown command: " + command);
}
