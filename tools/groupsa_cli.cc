// groupsa_cli — command-line front end to the library.
//
//   groupsa_cli generate --out DIR [--preset yelp|douban|tiny] [--seed N]
//       Generate a synthetic world and write it as TSV files.
//   groupsa_cli stats --data DIR
//       Print Table-I-style statistics of a stored dataset.
//   groupsa_cli train --data DIR --model FILE [--epochs N] [--seed N]
//               [--snapshot FILE] [--snapshot_every N] [--resume]
//       Train GroupSA on a stored dataset and save a checkpoint. Training
//       snapshots (default FILE.snap) are written atomically after every
//       epoch and every --snapshot_every batches; a killed run restarted
//       with --resume continues from the last snapshot and produces a
//       checkpoint byte-identical to an uninterrupted run, at any
//       --threads value.
//   groupsa_cli evaluate --data DIR --model FILE [--candidates N]
//       Evaluate a checkpoint with the paper's ranking protocol.
//   groupsa_cli kernels
//       Print the kernel backends this binary can run on this host, one
//       per line (scalar first, then ascending vector width). CI iterates
//       this list for the cross-backend bit-parity gates.
//
// All commands accept --threads N to size the global thread pool (default:
// GROUPSA_THREADS env or 1). Training and evaluation results are
// bit-identical at any thread count.
//   groupsa_cli recommend --data DIR --model FILE --members 1,2,3 [--top K]
//       Score the catalog for an ad-hoc group and print the Top-K items.
//       When the checkpoint cannot be loaded the command degrades to the
//       popularity baseline (pass --strict to fail instead).
//
// The train/evaluate/recommend commands re-derive the split and TF-IDF
// neighbourhoods deterministically from --seed, so a saved model and its
// evaluation always agree.
//
// Fault injection: GROUPSA_FAILPOINTS="name=action[@n[+]];..." arms
// failpoints (common/failpoint.h) in any command, e.g.
// GROUPSA_FAILPOINTS="trainer.batch=kill@12" kills training at batch 12 for
// the crash-resume CI gate.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/fallback_recommender.h"
#include "core/trainer.h"
#include "data/io.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tfidf.h"
#include "eval/evaluator.h"
#include "nn/checkpoint.h"
#include "tensor/backend.h"

using namespace groupsa;

namespace {

// Minimal --key value / --key=value parser.
std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// Everything train/evaluate/recommend share: dataset, split, neighbourhoods.
struct LoadedWorkspace {
  data::Dataset dataset;
  data::Split ui;
  data::Split gi;
  data::InteractionMatrix ui_train;
  data::InteractionMatrix gi_train;
  core::ModelData model_data;
  core::GroupSaConfig config;
};

bool LoadWorkspace(const std::string& dir, uint64_t seed,
                   LoadedWorkspace* ws) {
  if (Status s = data::LoadDataset(dir, &ws->dataset); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return false;
  }
  Rng rng(seed);
  ws->ui = data::SplitEdges(ws->dataset.user_item, 0.2, 0.1, &rng);
  ws->gi = data::GlobalSplitEdges(ws->dataset.group_item, 0.2, 0.1, &rng);
  ws->ui_train = data::InteractionMatrix(ws->dataset.num_users,
                                         ws->dataset.num_items, ws->ui.train);
  ws->gi_train = data::InteractionMatrix(ws->dataset.groups.num_groups(),
                                         ws->dataset.num_items, ws->gi.train);
  ws->config = core::GroupSaConfig::Default();
  ws->model_data.groups = &ws->dataset.groups;
  ws->model_data.social = &ws->dataset.social;
  ws->model_data.top_items =
      data::TopItemsPerUser(ws->ui_train, ws->config.top_h);
  ws->model_data.top_friends =
      data::TopFriendsPerUser(ws->dataset.social, ws->config.top_h);
  return true;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  const std::string out = FlagOr(flags, "out", "");
  if (out.empty()) return Fail("generate requires --out DIR");
  const std::string preset = FlagOr(flags, "preset", "yelp");
  data::SyntheticWorldConfig config;
  if (preset == "yelp") {
    config = data::SyntheticWorldConfig::YelpLike();
  } else if (preset == "douban") {
    config = data::SyntheticWorldConfig::DoubanEventLike();
  } else if (preset == "tiny") {
    config = data::SyntheticWorldConfig::Tiny();
  } else {
    return Fail("unknown preset: " + preset);
  }
  config.seed = std::strtoull(FlagOr(flags, "seed", "7").c_str(), nullptr, 10);
  const data::SyntheticWorld world = data::GenerateWorld(config);
  if (Status s = data::SaveDataset(world.dataset, out); !s.ok())
    return Fail(s.message());
  std::printf("wrote %s world to %s\n%s\n", config.name.c_str(), out.c_str(),
              world.dataset.ComputeStats().ToString().c_str());
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  if (dir.empty()) return Fail("stats requires --data DIR");
  data::Dataset dataset;
  if (Status s = data::LoadDataset(dir, &dataset); !s.ok())
    return Fail(s.message());
  std::printf("%s\n", dataset.ComputeStats().ToString().c_str());
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (dir.empty() || model_path.empty())
    return Fail("train requires --data DIR and --model FILE");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  LoadedWorkspace ws;
  if (!LoadWorkspace(dir, seed, &ws)) return 1;
  const int epochs = std::atoi(FlagOr(flags, "epochs", "8").c_str());
  ws.config.user_epochs = epochs;
  ws.config.group_epochs = epochs;

  Rng rng(seed + 1);
  core::GroupSaModel model(ws.config, ws.dataset.num_users,
                           ws.dataset.num_items, ws.model_data, &rng);
  std::printf("training GroupSA (%lld parameters, %d+%d epochs)...\n",
              static_cast<long long>(model.NumParameterScalars()), epochs,
              epochs);
  core::Trainer trainer(&model, ws.ui.train, ws.gi.train, &ws.ui_train,
                        &ws.gi_train, &rng);

  core::Trainer::FitOptions options;
  options.verbose = true;
  options.snapshot_path = FlagOr(flags, "snapshot", model_path + ".snap");
  options.snapshot_every =
      std::atoi(FlagOr(flags, "snapshot_every", "0").c_str());
  if (flags.count("resume") != 0) {
    if (std::FILE* f = std::fopen(options.snapshot_path.c_str(), "rb")) {
      std::fclose(f);
      if (Status s = trainer.ResumeFrom(options.snapshot_path); !s.ok())
        return Fail(s.message());
      std::printf("resuming from %s\n", options.snapshot_path.c_str());
    } else {
      std::printf("no snapshot at %s, starting fresh\n",
                  options.snapshot_path.c_str());
    }
  }
  core::Trainer::FitReport report;
  if (Status s = trainer.Fit(options, &report); !s.ok())
    return Fail(s.message());
  if (report.skipped_batches > 0 || report.rollbacks > 0) {
    std::printf("divergence guard: skipped %lld batches, %d rollbacks\n",
                static_cast<long long>(report.skipped_batches),
                report.rollbacks);
  }
  if (Status s = nn::SaveParameters(model.Parameters(), model_path); !s.ok())
    return Fail(s.message());
  std::printf("saved checkpoint to %s\n", model_path.c_str());
  return 0;
}

int CmdEvaluate(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (dir.empty() || model_path.empty())
    return Fail("evaluate requires --data DIR and --model FILE");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  LoadedWorkspace ws;
  if (!LoadWorkspace(dir, seed, &ws)) return 1;
  Rng rng(seed + 1);
  core::GroupSaModel model(ws.config, ws.dataset.num_users,
                           ws.dataset.num_items, ws.model_data, &rng);
  if (Status s = nn::LoadParameters(model.Parameters(), model_path); !s.ok())
    return Fail(s.message());

  const int candidates =
      std::atoi(FlagOr(flags, "candidates", "100").c_str());
  Rng eval_rng(seed + 2);
  const data::InteractionMatrix ui_all = ws.dataset.UserItemMatrix();
  const data::InteractionMatrix gi_all = ws.dataset.GroupItemMatrix();
  const auto user_cases =
      eval::BuildRankingCases(ws.ui.test, ui_all, candidates, &eval_rng);
  const auto group_cases =
      eval::BuildRankingCases(ws.gi.test, gi_all, candidates, &eval_rng);
  const eval::EvalResult user = eval::EvaluateRanking(
      user_cases,
      [&](int32_t u, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForUser(u, items);
      },
      {5, 10});
  const eval::EvalResult group = eval::EvaluateRanking(
      group_cases,
      [&](int32_t g, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForGroup(g, items);
      },
      {5, 10});
  std::printf("user task:  %s\ngroup task: %s\n", user.ToString().c_str(),
              group.ToString().c_str());
  return 0;
}

int CmdRecommend(const std::map<std::string, std::string>& flags) {
  const std::string dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  const std::string members_flag = FlagOr(flags, "members", "");
  if (dir.empty() || model_path.empty() || members_flag.empty())
    return Fail("recommend requires --data DIR --model FILE --members a,b,c");
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  LoadedWorkspace ws;
  if (!LoadWorkspace(dir, seed, &ws)) return 1;
  Rng rng(seed + 1);
  core::GroupSaModel model(ws.config, ws.dataset.num_users,
                           ws.dataset.num_items, ws.model_data, &rng);
  // Gracefully degrading serving: a bad checkpoint (missing, torn, corrupt)
  // downgrades to the popularity baseline instead of refusing to serve,
  // unless --strict asks for a hard failure.
  core::InferenceEngine* engine = &model.inference();
  std::string degrade_reason;
  if (Status s = nn::LoadParameters(model.Parameters(), model_path);
      !s.ok()) {
    if (flags.count("strict") != 0) return Fail(s.message());
    std::fprintf(stderr, "warning: %s; serving popularity fallback\n",
                 s.message().c_str());
    engine = nullptr;
    degrade_reason = s.message();
  }
  core::FallbackRecommender recommender(engine, ws.ui.train,
                                        ws.dataset.num_items);

  std::vector<data::UserId> members;
  for (const std::string& token : StrSplit(members_flag, ',')) {
    if (token.empty()) continue;
    members.push_back(std::atoi(token.c_str()));
  }
  if (members.empty()) return Fail("no member ids in --members");

  const int top_k = std::atoi(FlagOr(flags, "top", "10").c_str());
  const core::FallbackRecommender::Response response =
      recommender.RecommendForMembers(members, top_k, nullptr);
  if (response.degraded) {
    std::fprintf(stderr, "warning: degraded response (%s)\n",
                 response.error.c_str());
  }
  std::printf("Top-%d for group {%s}%s:\n", top_k, members_flag.c_str(),
              response.degraded ? " [popularity fallback]" : "");
  for (const auto& [item, score] : response.items)
    std::printf("  item #%-5d score %.4f\n", item, score);
  return 0;
}

// `kernels`: the runnable backend names, for scripts (tools/ci.sh) that
// need to enumerate what this host can actually execute.
int CmdKernels() {
  for (const tensor::KernelBackend* backend : tensor::CompiledBackends())
    if (backend->runnable()) std::printf("%s\n", backend->name);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: groupsa_cli <generate|stats|train|evaluate|"
                 "recommend|kernels> [flags]\n");
    return 1;
  }
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  // Fault injection for crash/IO testing (no-op unless the env var is set).
  failpoint::ArmFromEnv();
  // --threads N sizes the global pool for every command (train, evaluate,
  // recommend); results are bit-identical at any width.
  if (const int threads = std::atoi(FlagOr(flags, "threads", "0").c_str());
      threads > 0) {
    parallel::SetGlobalThreads(threads);
  }
  if (command == "generate") return CmdGenerate(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "recommend") return CmdRecommend(flags);
  if (command == "kernels") return CmdKernels();
  return Fail("unknown command: " + command);
}
