// groupsa_serve — the serving daemon front end.
//
//   groupsa_serve --data DIR --model FILE [--workers N] [--queue N]
//                 [--overload shed|reject] [--threads N] [--seed N]
//                 [--topk exact|ivf] [--nlist N] [--nprobe N]
//                 [--score exact|int8] [--rerank N] [--backend NAME]
//                 [--deadline TICKS] [--retries N] [--reload-retries N]
//                 [--breaker] [--breaker-window N] [--breaker-threshold N]
//                 [--breaker-open TICKS] [--breaker-probes N]
//                 [--no-supervise] [--script FILE] [--strict]
//
// Starts the queue-driven request pipeline (src/serve/server.h) over the
// dataset at DIR and the checkpoint at FILE, then executes commands from
// --script (or stdin), one per line:
//
//   user <id> <k> [x]          recommend for a user ("x" excludes seen items)
//   group <id> <k> [x]         recommend for a known group
//   members <a,b,c> <k> [x]    recommend for an ad-hoc (occasional) group
//   reload [path]              hot-swap to the checkpoint (default: --model)
//   stats                      print the monotone serving counters
//   health                     print the liveness snapshot (queue, breaker,
//                              per-worker state)
//   quit                       stop the daemon and exit
//
// Resilience flags (all measured on the daemon's virtual clock, which
// ticks once per submission and once per completion — never wall time):
// --deadline gives every request a tick budget, --retries retries
// transient worker faults with backoff charged against that budget,
// --breaker arms the model-path circuit breaker (window/threshold/open/
// probes tune it), --reload-retries re-attempts failed hot reloads in the
// background, --no-supervise disables hung-worker detection and restart.
//
// --score int8 serves the int8 candidate scan with exact FP32 re-ranking
// of the top --rerank approximate scores (quantized tables are built
// eagerly at every generation swap, composing with --topk ivf), and
// --backend pins the kernel backend (scalar|avx2|avx512) instead of the
// CPUID pick; the active backend is reported in the stats line.
//
// Responses print in request order with %.17g scores, so two runs of the
// same script byte-compare equal at any --workers / --threads width — the
// serve-mode golden gate in tools/ci.sh does exactly that. A missing or
// corrupt checkpoint degrades the daemon to the popularity fallback
// (--strict turns that into a startup failure); GROUPSA_FAILPOINTS arms
// the serve.* fault-injection sites (e.g. serve.reload.swap=kill for the
// crash-during-reload gate).

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "data/io.h"
#include "data/split.h"
#include "data/tfidf.h"
#include "nn/checkpoint.h"
#include "serve/harness.h"
#include "serve/server.h"
#include "tensor/backend.h"

using namespace groupsa;

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// The dataset-derived state every model generation is rebuilt from (same
// derivation as groupsa_cli train/evaluate, so a served model scores
// exactly what its training process saved).
struct Workspace {
  data::Dataset dataset;
  data::Split ui;
  data::Split gi;
  data::InteractionMatrix ui_train;
  data::InteractionMatrix gi_train;
  core::ModelData model_data;
  core::GroupSaConfig config;
  uint64_t seed = 1;
};

bool LoadWorkspace(const std::string& dir, uint64_t seed, Workspace* ws) {
  if (Status s = data::LoadDataset(dir, &ws->dataset); !s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.message().c_str());
    return false;
  }
  ws->seed = seed;
  Rng rng(seed);
  ws->ui = data::SplitEdges(ws->dataset.user_item, 0.2, 0.1, &rng);
  ws->gi = data::GlobalSplitEdges(ws->dataset.group_item, 0.2, 0.1, &rng);
  ws->ui_train = data::InteractionMatrix(ws->dataset.num_users,
                                         ws->dataset.num_items, ws->ui.train);
  ws->gi_train = data::InteractionMatrix(ws->dataset.groups.num_groups(),
                                         ws->dataset.num_items, ws->gi.train);
  ws->config = core::GroupSaConfig::Default();
  ws->model_data.groups = &ws->dataset.groups;
  ws->model_data.social = &ws->dataset.social;
  ws->model_data.top_items =
      data::TopItemsPerUser(ws->ui_train, ws->config.top_h);
  ws->model_data.top_friends =
      data::TopFriendsPerUser(ws->dataset.social, ws->config.top_h);
  return true;
}

bool ParseRequestLine(const std::vector<std::string>& tokens,
                      serve::Request* request) {
  if (tokens.size() < 3) return false;
  if (tokens[0] == "user") {
    request->kind = serve::Request::Kind::kUser;
    request->user = std::atoi(tokens[1].c_str());
  } else if (tokens[0] == "group") {
    request->kind = serve::Request::Kind::kGroup;
    request->group = std::atoi(tokens[1].c_str());
  } else if (tokens[0] == "members") {
    request->kind = serve::Request::Kind::kMembers;
    for (const std::string& token : StrSplit(tokens[1], ',')) {
      if (!token.empty()) request->members.push_back(std::atoi(token.c_str()));
    }
    if (request->members.empty()) return false;
  } else {
    return false;
  }
  request->k = std::atoi(tokens[2].c_str());
  request->exclude_seen = tokens.size() > 3 && tokens[3] == "x";
  return true;
}

void PrintStats(const serve::ServerStats& s) {
  std::printf(
      "stats submitted=%lld admitted=%lld completed=%lld shed=%lld "
      "rejected=%lld degraded=%lld reloads=%lld failed_reloads=%lld "
      "peak_queue=%lld backend=%s\n",
      static_cast<long long>(s.submitted), static_cast<long long>(s.admitted),
      static_cast<long long>(s.completed), static_cast<long long>(s.shed),
      static_cast<long long>(s.rejected), static_cast<long long>(s.degraded),
      static_cast<long long>(s.reloads),
      static_cast<long long>(s.failed_reloads),
      static_cast<long long>(s.peak_queue_depth), tensor::ActiveBackendName());
  std::printf(
      "stats.resilience expired=%lld expired_queue=%lld invalid=%lld "
      "retries=%lld worker_faults=%lld hangs_rescued=%lld "
      "worker_restarts=%lld reload_retries=%lld breaker_trips=%lld "
      "breaker_reopens=%lld breaker_closes=%lld breaker_probes=%lld "
      "breaker_state=%s now_tick=%llu\n",
      static_cast<long long>(s.expired),
      static_cast<long long>(s.expired_queue),
      static_cast<long long>(s.invalid), static_cast<long long>(s.retries),
      static_cast<long long>(s.worker_faults),
      static_cast<long long>(s.hangs_rescued),
      static_cast<long long>(s.worker_restarts),
      static_cast<long long>(s.reload_retry_attempts),
      static_cast<long long>(s.breaker_trips),
      static_cast<long long>(s.breaker_reopens),
      static_cast<long long>(s.breaker_closes),
      static_cast<long long>(s.breaker_probes),
      serve::BreakerStateName(static_cast<serve::BreakerState>(s.breaker_state))
          .c_str(),
      static_cast<unsigned long long>(s.now_tick));
}

void PrintHealth(const serve::ServerHealth& h) {
  std::printf(
      "health running=%d accepting=%d paused=%d queue_depth=%d "
      "now_tick=%llu gen=%llu breaker=%s reload_retry_pending=%d\n",
      h.running ? 1 : 0, h.accepting ? 1 : 0, h.paused ? 1 : 0, h.queue_depth,
      static_cast<unsigned long long>(h.now_tick),
      static_cast<unsigned long long>(h.generation),
      serve::BreakerStateName(h.breaker).c_str(),
      h.reload_retry_pending ? 1 : 0);
  for (const serve::ServerHealth::Worker& w : h.workers) {
    std::printf(
        "health.worker slot=%d alive=%d busy=%d hanging=%d job=%llu "
        "restarts=%lld\n",
        w.slot, w.alive ? 1 : 0, w.busy ? 1 : 0, w.hanging ? 1 : 0,
        static_cast<unsigned long long>(w.job_id),
        static_cast<long long>(w.restarts));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = ParseFlags(argc, argv, 1);
  failpoint::ArmFromEnv();
  const std::string dir = FlagOr(flags, "data", "");
  const std::string model_path = FlagOr(flags, "model", "");
  if (dir.empty() || model_path.empty())
    return Fail("groupsa_serve requires --data DIR and --model FILE");
  if (const int threads = std::atoi(FlagOr(flags, "threads", "0").c_str());
      threads > 0) {
    parallel::SetGlobalThreads(threads);
  }
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "1").c_str(), nullptr, 10);
  const bool strict = flags.count("strict") != 0;

  Workspace ws;
  if (!LoadWorkspace(dir, seed, &ws)) return 1;

  serve::ServeConfig config;
  config.workers = std::atoi(FlagOr(flags, "workers", "2").c_str());
  config.queue_depth = std::atoi(FlagOr(flags, "queue", "64").c_str());
  const std::string overload = FlagOr(flags, "overload", "shed");
  if (overload == "reject") {
    config.overload = serve::ServeConfig::OverloadPolicy::kReject;
  } else if (overload != "shed") {
    return Fail("unknown --overload policy: " + overload);
  }
  const std::string topk = FlagOr(flags, "topk", "exact");
  if (topk == "ivf") {
    config.topk = core::TopKMode::kIvf;
    config.index.nlist = std::atoi(FlagOr(flags, "nlist", "0").c_str());
    config.index.nprobe = std::atoi(FlagOr(flags, "nprobe", "0").c_str());
  } else if (topk != "exact") {
    return Fail("unknown --topk mode: " + topk);
  }
  const std::string score = FlagOr(flags, "score", "exact");
  if (score == "int8") {
    config.score = core::ScoreMode::kInt8;
    if (const int rerank = std::atoi(FlagOr(flags, "rerank", "0").c_str());
        rerank > 0) {
      config.int8.rerank_k = rerank;
    }
  } else if (score != "exact") {
    return Fail("unknown --score mode: " + score);
  }
  if (const std::string backend = FlagOr(flags, "backend", "");
      !backend.empty() && !tensor::SelectBackendByName(backend)) {
    return Fail("kernel backend not available on this host: " + backend);
  }
  config.deadline_ticks =
      std::strtoull(FlagOr(flags, "deadline", "0").c_str(), nullptr, 10);
  config.backoff.max_retries =
      std::atoi(FlagOr(flags, "retries", "0").c_str());
  config.reload_retries =
      std::atoi(FlagOr(flags, "reload-retries", "0").c_str());
  if (flags.count("breaker") != 0) {
    config.breaker.enabled = true;
    config.breaker.window =
        std::atoi(FlagOr(flags, "breaker-window", "16").c_str());
    config.breaker.threshold =
        std::atoi(FlagOr(flags, "breaker-threshold", "8").c_str());
    config.breaker.open_ticks = std::strtoull(
        FlagOr(flags, "breaker-open", "32").c_str(), nullptr, 10);
    config.breaker.probes =
        std::atoi(FlagOr(flags, "breaker-probes", "2").c_str());
  }
  config.supervise = flags.count("no-supervise") == 0;

  // Each generation is a fresh model with the checkpoint's parameters. A
  // load failure degrades to popularity-only serving unless --strict.
  serve::Server::ModelFactory factory =
      [&ws, strict](const std::string& path,
                    std::unique_ptr<core::GroupSaModel>* out) -> Status {
    Rng rng(ws.seed + 1);
    auto model = std::make_unique<core::GroupSaModel>(
        ws.config, ws.dataset.num_users, ws.dataset.num_items, ws.model_data,
        &rng);
    if (Status s = nn::LoadParameters(model->Parameters(), path); !s.ok()) {
      if (strict) return s;
      std::fprintf(stderr, "warning: %s; serving popularity fallback\n",
                   s.message().c_str());
      out->reset();
      return Status::Ok();
    }
    *out = std::move(model);
    return Status::Ok();
  };

  serve::Server server(config, std::move(factory), model_path, ws.ui.train,
                       ws.dataset.num_users, ws.dataset.groups.num_groups(),
                       ws.dataset.num_items, &ws.ui_train, &ws.gi_train);
  if (Status s = server.Start(); !s.ok()) return Fail(s.message());
  std::printf("serving %s (%d workers, queue %d, %s overload, gen %llu)\n",
              dir.c_str(), config.workers, config.queue_depth,
              overload.c_str(),
              static_cast<unsigned long long>(server.generation()));

  std::FILE* script = stdin;
  const std::string script_path = FlagOr(flags, "script", "");
  if (!script_path.empty() && script_path != "-") {
    script = std::fopen(script_path.c_str(), "r");
    if (script == nullptr) return Fail("cannot open script " + script_path);
  }

  char line[4096];
  uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), script) != nullptr) {
    ++line_no;
    std::string text(line);
    while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
      text.pop_back();
    if (text.empty() || text[0] == '#') continue;
    std::vector<std::string> tokens;
    for (const std::string& token : StrSplit(text, ' '))
      if (!token.empty()) tokens.push_back(token);
    if (tokens.empty()) continue;

    if (tokens[0] == "quit") break;
    if (tokens[0] == "stats") {
      PrintStats(server.stats());
      continue;
    }
    if (tokens[0] == "health") {
      PrintHealth(server.Health());
      continue;
    }
    if (tokens[0] == "reload") {
      const std::string path = tokens.size() > 1 ? tokens[1] : model_path;
      if (Status s = server.Reload(path); !s.ok()) {
        std::printf("reload failed: %s\n", s.message().c_str());
      } else {
        std::printf("reloaded gen=%llu\n",
                    static_cast<unsigned long long>(server.generation()));
      }
      continue;
    }
    serve::Request request;
    if (!ParseRequestLine(tokens, &request)) {
      std::printf("line %llu: bad command: %s\n",
                  static_cast<unsigned long long>(line_no), text.c_str());
      continue;
    }
    const serve::Response response = server.Call(request);
    std::printf("%s -> %s\n", serve::FormatRequest(request).c_str(),
                serve::FormatResponse(response).c_str());
  }
  if (script != stdin) std::fclose(script);

  server.Stop();
  PrintStats(server.stats());
  return 0;
}
