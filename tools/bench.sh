#!/usr/bin/env bash
# Inference benchmark entry point: builds bench_inference and records the
# full-catalog scoring comparison (per-item reference path vs the batched
# InferenceEngine) to BENCH_inference.json at the repo root. The driver
# re-verifies the 0-ULP parity contract on every run and exits non-zero if
# the batched scores diverge, so a recorded speedup always describes
# bit-identical results.
#
# Usage: tools/bench.sh [--items=N] [--groups=N] [--users=N] [--threads=N]
#        (extra flags are forwarded to bench_inference; defaults below match
#         the acceptance setup: 2000-item catalog, single thread)

set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$(nproc)" --target bench_inference

./build/bench/bench_inference \
  --items=2000 --groups=20 --users=40 --threads=1 \
  --json=BENCH_inference.json "$@"

echo "wrote BENCH_inference.json"
