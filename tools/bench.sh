#!/usr/bin/env bash
# Performance benchmark entry point: builds and runs the timing drivers and
# records their machine-readable results at the repo root.
#
#   bench_inference -> BENCH_inference.json  (full-catalog scoring: per-item
#                      reference path vs the batched InferenceEngine)
#   bench_training  -> BENCH_training.json   (two-stage Fit with the tensor
#                      pool on vs off, at one and four threads)
#   bench_serving   -> BENCH_serving.json    (daemon pipeline under steady
#                      and burst open-loop load: QPS, p50/p99 latency,
#                      shed/degraded counts)
#   bench_quant     -> BENCH_quant.json      (per-kernel timings for every
#                      compiled dispatch backend, byte-compared against
#                      scalar before any number is recorded)
#
# Every driver re-verifies its bit-identity contract on every run and exits
# non-zero on any divergence, so a recorded number always describes
# bit-identical results (the serving driver parity-checks the pipeline
# against direct InferenceEngine calls before timing anything).
#
# Usage: tools/bench.sh [inference|training|serving|quant|all] [extra flags...]
#        (extra flags are forwarded to the selected driver; the inference
#         defaults below match the acceptance setup: 2000-item catalog,
#         single thread)

set -euo pipefail
cd "$(dirname "$0")/.."

TARGET="${1:-all}"
if [ $# -gt 0 ]; then shift; fi

# Configure only when the build tree does not exist yet (standalone lanes
# reuse a developer's existing configuration).
if [ ! -f build/CMakeCache.txt ]; then
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build build -j "$(nproc)" \
  --target bench_inference bench_training bench_serving bench_quant

if [ "${TARGET}" = "inference" ] || [ "${TARGET}" = "all" ]; then
  ./build/bench/bench_inference \
    --items=2000 --groups=20 --users=40 --threads=1 --sweep \
    --json=BENCH_inference.json "$@"
  echo "wrote BENCH_inference.json"
fi

if [ "${TARGET}" = "training" ] || [ "${TARGET}" = "all" ]; then
  ./build/bench/bench_training --json=BENCH_training.json "$@"
  echo "wrote BENCH_training.json"
fi

if [ "${TARGET}" = "serving" ] || [ "${TARGET}" = "all" ]; then
  ./build/bench/bench_serving --json=BENCH_serving.json "$@"
  echo "wrote BENCH_serving.json"
fi

if [ "${TARGET}" = "quant" ] || [ "${TARGET}" = "all" ]; then
  ./build/bench/bench_quant --json=BENCH_quant.json "$@"
  echo "wrote BENCH_quant.json"
fi
