#!/usr/bin/env bash
# Performance benchmark entry point: builds and runs the two timing drivers
# and records their machine-readable results at the repo root.
#
#   bench_inference -> BENCH_inference.json  (full-catalog scoring: per-item
#                      reference path vs the batched InferenceEngine)
#   bench_training  -> BENCH_training.json   (two-stage Fit with the tensor
#                      pool on vs off, at one and four threads)
#
# Both drivers re-verify their bit-identity contracts on every run and exit
# non-zero on any divergence, so a recorded speedup always describes
# bit-identical results.
#
# Usage: tools/bench.sh [inference|training|all] [extra flags...]
#        (extra flags are forwarded to the selected driver; the inference
#         defaults below match the acceptance setup: 2000-item catalog,
#         single thread)

set -euo pipefail
cd "$(dirname "$0")/.."

TARGET="${1:-all}"
if [ $# -gt 0 ]; then shift; fi

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j "$(nproc)" --target bench_inference bench_training

if [ "${TARGET}" = "inference" ] || [ "${TARGET}" = "all" ]; then
  ./build/bench/bench_inference \
    --items=2000 --groups=20 --users=40 --threads=1 \
    --json=BENCH_inference.json "$@"
  echo "wrote BENCH_inference.json"
fi

if [ "${TARGET}" = "training" ] || [ "${TARGET}" = "all" ]; then
  ./build/bench/bench_training --json=BENCH_training.json "$@"
  echo "wrote BENCH_training.json"
fi
