# Empty compiler generated dependencies file for bench_table3_douban.
# This may be replaced when dependencies are built.
