file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_douban.dir/table3_douban.cc.o"
  "CMakeFiles/bench_table3_douban.dir/table3_douban.cc.o.d"
  "bench_table3_douban"
  "bench_table3_douban.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_douban.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
