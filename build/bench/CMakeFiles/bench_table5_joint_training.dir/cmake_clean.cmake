file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_joint_training.dir/table5_joint_training.cc.o"
  "CMakeFiles/bench_table5_joint_training.dir/table5_joint_training.cc.o.d"
  "bench_table5_joint_training"
  "bench_table5_joint_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_joint_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
