# Empty dependencies file for bench_table5_joint_training.
# This may be replaced when dependencies are built.
