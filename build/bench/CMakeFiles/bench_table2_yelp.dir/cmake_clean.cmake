file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_yelp.dir/table2_yelp.cc.o"
  "CMakeFiles/bench_table2_yelp.dir/table2_yelp.cc.o.d"
  "bench_table2_yelp"
  "bench_table2_yelp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_yelp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
