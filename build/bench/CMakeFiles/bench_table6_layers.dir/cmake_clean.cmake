file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_layers.dir/table6_layers.cc.o"
  "CMakeFiles/bench_table6_layers.dir/table6_layers.cc.o.d"
  "bench_table6_layers"
  "bench_table6_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
