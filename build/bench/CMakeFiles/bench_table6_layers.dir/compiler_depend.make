# Empty compiler generated dependencies file for bench_table6_layers.
# This may be replaced when dependencies are built.
