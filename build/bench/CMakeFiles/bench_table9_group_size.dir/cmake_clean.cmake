file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_group_size.dir/table9_group_size.cc.o"
  "CMakeFiles/bench_table9_group_size.dir/table9_group_size.cc.o.d"
  "bench_table9_group_size"
  "bench_table9_group_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_group_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
