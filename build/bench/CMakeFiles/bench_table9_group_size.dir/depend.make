# Empty dependencies file for bench_table9_group_size.
# This may be replaced when dependencies are built.
