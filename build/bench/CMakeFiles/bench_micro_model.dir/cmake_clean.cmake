file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_model.dir/micro_model.cc.o"
  "CMakeFiles/bench_micro_model.dir/micro_model.cc.o.d"
  "bench_micro_model"
  "bench_micro_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
