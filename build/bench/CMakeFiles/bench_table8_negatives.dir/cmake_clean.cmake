file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_negatives.dir/table8_negatives.cc.o"
  "CMakeFiles/bench_table8_negatives.dir/table8_negatives.cc.o.d"
  "bench_table8_negatives"
  "bench_table8_negatives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_negatives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
