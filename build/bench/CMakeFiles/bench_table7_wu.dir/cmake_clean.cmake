file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_wu.dir/table7_wu.cc.o"
  "CMakeFiles/bench_table7_wu.dir/table7_wu.cc.o.d"
  "bench_table7_wu"
  "bench_table7_wu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_wu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
