# Empty dependencies file for example_restaurant_groups.
# This may be replaced when dependencies are built.
