file(REMOVE_RECURSE
  "CMakeFiles/example_restaurant_groups.dir/restaurant_groups.cc.o"
  "CMakeFiles/example_restaurant_groups.dir/restaurant_groups.cc.o.d"
  "example_restaurant_groups"
  "example_restaurant_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_restaurant_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
