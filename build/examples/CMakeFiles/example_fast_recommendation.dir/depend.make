# Empty dependencies file for example_fast_recommendation.
# This may be replaced when dependencies are built.
