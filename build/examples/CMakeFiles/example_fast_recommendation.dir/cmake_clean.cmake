file(REMOVE_RECURSE
  "CMakeFiles/example_fast_recommendation.dir/fast_recommendation.cc.o"
  "CMakeFiles/example_fast_recommendation.dir/fast_recommendation.cc.o.d"
  "example_fast_recommendation"
  "example_fast_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fast_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
