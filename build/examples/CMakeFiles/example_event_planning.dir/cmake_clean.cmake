file(REMOVE_RECURSE
  "CMakeFiles/example_event_planning.dir/event_planning.cc.o"
  "CMakeFiles/example_event_planning.dir/event_planning.cc.o.d"
  "example_event_planning"
  "example_event_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_event_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
