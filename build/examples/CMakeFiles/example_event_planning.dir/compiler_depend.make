# Empty compiler generated dependencies file for example_event_planning.
# This may be replaced when dependencies are built.
