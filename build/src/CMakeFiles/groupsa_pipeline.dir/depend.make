# Empty dependencies file for groupsa_pipeline.
# This may be replaced when dependencies are built.
