file(REMOVE_RECURSE
  "libgroupsa_pipeline.a"
)
