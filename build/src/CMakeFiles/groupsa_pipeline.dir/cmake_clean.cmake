file(REMOVE_RECURSE
  "CMakeFiles/groupsa_pipeline.dir/pipeline/experiment.cc.o"
  "CMakeFiles/groupsa_pipeline.dir/pipeline/experiment.cc.o.d"
  "libgroupsa_pipeline.a"
  "libgroupsa_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
