file(REMOVE_RECURSE
  "libgroupsa_autograd.a"
)
