# Empty compiler generated dependencies file for groupsa_autograd.
# This may be replaced when dependencies are built.
