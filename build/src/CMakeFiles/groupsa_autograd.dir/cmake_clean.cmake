file(REMOVE_RECURSE
  "CMakeFiles/groupsa_autograd.dir/autograd/grad_check.cc.o"
  "CMakeFiles/groupsa_autograd.dir/autograd/grad_check.cc.o.d"
  "CMakeFiles/groupsa_autograd.dir/autograd/ops.cc.o"
  "CMakeFiles/groupsa_autograd.dir/autograd/ops.cc.o.d"
  "CMakeFiles/groupsa_autograd.dir/autograd/tape.cc.o"
  "CMakeFiles/groupsa_autograd.dir/autograd/tape.cc.o.d"
  "CMakeFiles/groupsa_autograd.dir/autograd/tensor.cc.o"
  "CMakeFiles/groupsa_autograd.dir/autograd/tensor.cc.o.d"
  "libgroupsa_autograd.a"
  "libgroupsa_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
