
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/candidates.cc" "src/CMakeFiles/groupsa_data.dir/data/candidates.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/candidates.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/groupsa_data.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/group_table.cc" "src/CMakeFiles/groupsa_data.dir/data/group_table.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/group_table.cc.o.d"
  "/root/repo/src/data/interaction_matrix.cc" "src/CMakeFiles/groupsa_data.dir/data/interaction_matrix.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/interaction_matrix.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/groupsa_data.dir/data/io.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/io.cc.o.d"
  "/root/repo/src/data/negative_sampler.cc" "src/CMakeFiles/groupsa_data.dir/data/negative_sampler.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/negative_sampler.cc.o.d"
  "/root/repo/src/data/social_graph.cc" "src/CMakeFiles/groupsa_data.dir/data/social_graph.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/social_graph.cc.o.d"
  "/root/repo/src/data/split.cc" "src/CMakeFiles/groupsa_data.dir/data/split.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/split.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/groupsa_data.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/synthetic.cc.o.d"
  "/root/repo/src/data/tfidf.cc" "src/CMakeFiles/groupsa_data.dir/data/tfidf.cc.o" "gcc" "src/CMakeFiles/groupsa_data.dir/data/tfidf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/groupsa_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
