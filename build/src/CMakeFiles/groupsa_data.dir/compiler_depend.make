# Empty compiler generated dependencies file for groupsa_data.
# This may be replaced when dependencies are built.
