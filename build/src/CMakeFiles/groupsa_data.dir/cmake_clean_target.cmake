file(REMOVE_RECURSE
  "libgroupsa_data.a"
)
