file(REMOVE_RECURSE
  "CMakeFiles/groupsa_data.dir/data/candidates.cc.o"
  "CMakeFiles/groupsa_data.dir/data/candidates.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/dataset.cc.o"
  "CMakeFiles/groupsa_data.dir/data/dataset.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/group_table.cc.o"
  "CMakeFiles/groupsa_data.dir/data/group_table.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/interaction_matrix.cc.o"
  "CMakeFiles/groupsa_data.dir/data/interaction_matrix.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/io.cc.o"
  "CMakeFiles/groupsa_data.dir/data/io.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/negative_sampler.cc.o"
  "CMakeFiles/groupsa_data.dir/data/negative_sampler.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/social_graph.cc.o"
  "CMakeFiles/groupsa_data.dir/data/social_graph.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/split.cc.o"
  "CMakeFiles/groupsa_data.dir/data/split.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/synthetic.cc.o"
  "CMakeFiles/groupsa_data.dir/data/synthetic.cc.o.d"
  "CMakeFiles/groupsa_data.dir/data/tfidf.cc.o"
  "CMakeFiles/groupsa_data.dir/data/tfidf.cc.o.d"
  "libgroupsa_data.a"
  "libgroupsa_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
