file(REMOVE_RECURSE
  "CMakeFiles/groupsa_common.dir/common/logging.cc.o"
  "CMakeFiles/groupsa_common.dir/common/logging.cc.o.d"
  "CMakeFiles/groupsa_common.dir/common/rng.cc.o"
  "CMakeFiles/groupsa_common.dir/common/rng.cc.o.d"
  "CMakeFiles/groupsa_common.dir/common/string_util.cc.o"
  "CMakeFiles/groupsa_common.dir/common/string_util.cc.o.d"
  "libgroupsa_common.a"
  "libgroupsa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
