file(REMOVE_RECURSE
  "libgroupsa_common.a"
)
