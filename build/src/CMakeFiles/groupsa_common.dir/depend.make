# Empty dependencies file for groupsa_common.
# This may be replaced when dependencies are built.
