file(REMOVE_RECURSE
  "CMakeFiles/groupsa_baselines.dir/baselines/agree.cc.o"
  "CMakeFiles/groupsa_baselines.dir/baselines/agree.cc.o.d"
  "CMakeFiles/groupsa_baselines.dir/baselines/bpr.cc.o"
  "CMakeFiles/groupsa_baselines.dir/baselines/bpr.cc.o.d"
  "CMakeFiles/groupsa_baselines.dir/baselines/ncf.cc.o"
  "CMakeFiles/groupsa_baselines.dir/baselines/ncf.cc.o.d"
  "CMakeFiles/groupsa_baselines.dir/baselines/popularity.cc.o"
  "CMakeFiles/groupsa_baselines.dir/baselines/popularity.cc.o.d"
  "CMakeFiles/groupsa_baselines.dir/baselines/sigr.cc.o"
  "CMakeFiles/groupsa_baselines.dir/baselines/sigr.cc.o.d"
  "CMakeFiles/groupsa_baselines.dir/baselines/static_agg.cc.o"
  "CMakeFiles/groupsa_baselines.dir/baselines/static_agg.cc.o.d"
  "libgroupsa_baselines.a"
  "libgroupsa_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
