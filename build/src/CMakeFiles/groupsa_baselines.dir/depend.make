# Empty dependencies file for groupsa_baselines.
# This may be replaced when dependencies are built.
