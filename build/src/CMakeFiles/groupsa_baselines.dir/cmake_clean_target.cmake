file(REMOVE_RECURSE
  "libgroupsa_baselines.a"
)
