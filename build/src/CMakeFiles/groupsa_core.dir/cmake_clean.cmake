file(REMOVE_RECURSE
  "CMakeFiles/groupsa_core.dir/core/config.cc.o"
  "CMakeFiles/groupsa_core.dir/core/config.cc.o.d"
  "CMakeFiles/groupsa_core.dir/core/fast_recommender.cc.o"
  "CMakeFiles/groupsa_core.dir/core/fast_recommender.cc.o.d"
  "CMakeFiles/groupsa_core.dir/core/groupsa_model.cc.o"
  "CMakeFiles/groupsa_core.dir/core/groupsa_model.cc.o.d"
  "CMakeFiles/groupsa_core.dir/core/predictor.cc.o"
  "CMakeFiles/groupsa_core.dir/core/predictor.cc.o.d"
  "CMakeFiles/groupsa_core.dir/core/trainer.cc.o"
  "CMakeFiles/groupsa_core.dir/core/trainer.cc.o.d"
  "CMakeFiles/groupsa_core.dir/core/user_modeling.cc.o"
  "CMakeFiles/groupsa_core.dir/core/user_modeling.cc.o.d"
  "CMakeFiles/groupsa_core.dir/core/voting_scheme.cc.o"
  "CMakeFiles/groupsa_core.dir/core/voting_scheme.cc.o.d"
  "libgroupsa_core.a"
  "libgroupsa_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
