file(REMOVE_RECURSE
  "libgroupsa_core.a"
)
