# Empty compiler generated dependencies file for groupsa_core.
# This may be replaced when dependencies are built.
