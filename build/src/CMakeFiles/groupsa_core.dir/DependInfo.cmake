
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "src/CMakeFiles/groupsa_core.dir/core/config.cc.o" "gcc" "src/CMakeFiles/groupsa_core.dir/core/config.cc.o.d"
  "/root/repo/src/core/fast_recommender.cc" "src/CMakeFiles/groupsa_core.dir/core/fast_recommender.cc.o" "gcc" "src/CMakeFiles/groupsa_core.dir/core/fast_recommender.cc.o.d"
  "/root/repo/src/core/groupsa_model.cc" "src/CMakeFiles/groupsa_core.dir/core/groupsa_model.cc.o" "gcc" "src/CMakeFiles/groupsa_core.dir/core/groupsa_model.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/CMakeFiles/groupsa_core.dir/core/predictor.cc.o" "gcc" "src/CMakeFiles/groupsa_core.dir/core/predictor.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/groupsa_core.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/groupsa_core.dir/core/trainer.cc.o.d"
  "/root/repo/src/core/user_modeling.cc" "src/CMakeFiles/groupsa_core.dir/core/user_modeling.cc.o" "gcc" "src/CMakeFiles/groupsa_core.dir/core/user_modeling.cc.o.d"
  "/root/repo/src/core/voting_scheme.cc" "src/CMakeFiles/groupsa_core.dir/core/voting_scheme.cc.o" "gcc" "src/CMakeFiles/groupsa_core.dir/core/voting_scheme.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/groupsa_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
