# Empty dependencies file for groupsa_nn.
# This may be replaced when dependencies are built.
