file(REMOVE_RECURSE
  "libgroupsa_nn.a"
)
