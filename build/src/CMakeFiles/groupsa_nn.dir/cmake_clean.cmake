file(REMOVE_RECURSE
  "CMakeFiles/groupsa_nn.dir/nn/attention_pool.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/attention_pool.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/checkpoint.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/checkpoint.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/dropout.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/dropout.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/embedding.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/embedding.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/init.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/init.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/layer_norm.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/layer_norm.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/linear.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/linear.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/module.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/module.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/self_attention.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/self_attention.cc.o.d"
  "CMakeFiles/groupsa_nn.dir/nn/transformer_block.cc.o"
  "CMakeFiles/groupsa_nn.dir/nn/transformer_block.cc.o.d"
  "libgroupsa_nn.a"
  "libgroupsa_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
