
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention_pool.cc" "src/CMakeFiles/groupsa_nn.dir/nn/attention_pool.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/attention_pool.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/CMakeFiles/groupsa_nn.dir/nn/checkpoint.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/checkpoint.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/groupsa_nn.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/groupsa_nn.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/groupsa_nn.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/CMakeFiles/groupsa_nn.dir/nn/layer_norm.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/layer_norm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/groupsa_nn.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/groupsa_nn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/groupsa_nn.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/groupsa_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/self_attention.cc" "src/CMakeFiles/groupsa_nn.dir/nn/self_attention.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/self_attention.cc.o.d"
  "/root/repo/src/nn/transformer_block.cc" "src/CMakeFiles/groupsa_nn.dir/nn/transformer_block.cc.o" "gcc" "src/CMakeFiles/groupsa_nn.dir/nn/transformer_block.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/groupsa_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
