# Empty compiler generated dependencies file for groupsa_nn.
# This may be replaced when dependencies are built.
