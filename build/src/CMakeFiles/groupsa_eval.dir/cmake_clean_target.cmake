file(REMOVE_RECURSE
  "libgroupsa_eval.a"
)
