file(REMOVE_RECURSE
  "CMakeFiles/groupsa_eval.dir/eval/evaluator.cc.o"
  "CMakeFiles/groupsa_eval.dir/eval/evaluator.cc.o.d"
  "CMakeFiles/groupsa_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/groupsa_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/groupsa_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/groupsa_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/groupsa_eval.dir/eval/ttest.cc.o"
  "CMakeFiles/groupsa_eval.dir/eval/ttest.cc.o.d"
  "libgroupsa_eval.a"
  "libgroupsa_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
