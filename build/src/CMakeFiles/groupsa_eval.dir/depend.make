# Empty dependencies file for groupsa_eval.
# This may be replaced when dependencies are built.
