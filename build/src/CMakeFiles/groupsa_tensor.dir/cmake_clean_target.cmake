file(REMOVE_RECURSE
  "libgroupsa_tensor.a"
)
