# Empty dependencies file for groupsa_tensor.
# This may be replaced when dependencies are built.
