file(REMOVE_RECURSE
  "CMakeFiles/groupsa_tensor.dir/tensor/matrix.cc.o"
  "CMakeFiles/groupsa_tensor.dir/tensor/matrix.cc.o.d"
  "CMakeFiles/groupsa_tensor.dir/tensor/ops.cc.o"
  "CMakeFiles/groupsa_tensor.dir/tensor/ops.cc.o.d"
  "libgroupsa_tensor.a"
  "libgroupsa_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
