# Empty compiler generated dependencies file for groupsa_cli.
# This may be replaced when dependencies are built.
