file(REMOVE_RECURSE
  "CMakeFiles/groupsa_cli.dir/groupsa_cli.cc.o"
  "CMakeFiles/groupsa_cli.dir/groupsa_cli.cc.o.d"
  "groupsa_cli"
  "groupsa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groupsa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
