# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_tensor[1]_include.cmake")
include("/root/repo/build/tests/tests_autograd[1]_include.cmake")
include("/root/repo/build/tests/tests_nn[1]_include.cmake")
include("/root/repo/build/tests/tests_data[1]_include.cmake")
include("/root/repo/build/tests/tests_eval[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_baselines[1]_include.cmake")
include("/root/repo/build/tests/tests_pipeline[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
