# Empty compiler generated dependencies file for tests_autograd.
# This may be replaced when dependencies are built.
