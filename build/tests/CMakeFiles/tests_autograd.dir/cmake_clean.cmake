file(REMOVE_RECURSE
  "CMakeFiles/tests_autograd.dir/autograd/network_property_test.cc.o"
  "CMakeFiles/tests_autograd.dir/autograd/network_property_test.cc.o.d"
  "CMakeFiles/tests_autograd.dir/autograd/ops_grad_test.cc.o"
  "CMakeFiles/tests_autograd.dir/autograd/ops_grad_test.cc.o.d"
  "CMakeFiles/tests_autograd.dir/autograd/tape_test.cc.o"
  "CMakeFiles/tests_autograd.dir/autograd/tape_test.cc.o.d"
  "tests_autograd"
  "tests_autograd.pdb"
  "tests_autograd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
