
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/autograd/network_property_test.cc" "tests/CMakeFiles/tests_autograd.dir/autograd/network_property_test.cc.o" "gcc" "tests/CMakeFiles/tests_autograd.dir/autograd/network_property_test.cc.o.d"
  "/root/repo/tests/autograd/ops_grad_test.cc" "tests/CMakeFiles/tests_autograd.dir/autograd/ops_grad_test.cc.o" "gcc" "tests/CMakeFiles/tests_autograd.dir/autograd/ops_grad_test.cc.o.d"
  "/root/repo/tests/autograd/tape_test.cc" "tests/CMakeFiles/tests_autograd.dir/autograd/tape_test.cc.o" "gcc" "tests/CMakeFiles/tests_autograd.dir/autograd/tape_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/groupsa_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
