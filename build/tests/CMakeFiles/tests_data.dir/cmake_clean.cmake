file(REMOVE_RECURSE
  "CMakeFiles/tests_data.dir/data/candidates_test.cc.o"
  "CMakeFiles/tests_data.dir/data/candidates_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/dataset_test.cc.o"
  "CMakeFiles/tests_data.dir/data/dataset_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/group_table_test.cc.o"
  "CMakeFiles/tests_data.dir/data/group_table_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/interaction_matrix_test.cc.o"
  "CMakeFiles/tests_data.dir/data/interaction_matrix_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/io_test.cc.o"
  "CMakeFiles/tests_data.dir/data/io_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/negative_sampler_test.cc.o"
  "CMakeFiles/tests_data.dir/data/negative_sampler_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/social_graph_test.cc.o"
  "CMakeFiles/tests_data.dir/data/social_graph_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/split_test.cc.o"
  "CMakeFiles/tests_data.dir/data/split_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/synthetic_property_test.cc.o"
  "CMakeFiles/tests_data.dir/data/synthetic_property_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/synthetic_test.cc.o"
  "CMakeFiles/tests_data.dir/data/synthetic_test.cc.o.d"
  "CMakeFiles/tests_data.dir/data/tfidf_test.cc.o"
  "CMakeFiles/tests_data.dir/data/tfidf_test.cc.o.d"
  "tests_data"
  "tests_data.pdb"
  "tests_data[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
