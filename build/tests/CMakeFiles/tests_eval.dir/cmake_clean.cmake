file(REMOVE_RECURSE
  "CMakeFiles/tests_eval.dir/eval/evaluator_test.cc.o"
  "CMakeFiles/tests_eval.dir/eval/evaluator_test.cc.o.d"
  "CMakeFiles/tests_eval.dir/eval/experiment_test.cc.o"
  "CMakeFiles/tests_eval.dir/eval/experiment_test.cc.o.d"
  "CMakeFiles/tests_eval.dir/eval/metrics_test.cc.o"
  "CMakeFiles/tests_eval.dir/eval/metrics_test.cc.o.d"
  "CMakeFiles/tests_eval.dir/eval/ttest_test.cc.o"
  "CMakeFiles/tests_eval.dir/eval/ttest_test.cc.o.d"
  "tests_eval"
  "tests_eval.pdb"
  "tests_eval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
