
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/evaluator_test.cc" "tests/CMakeFiles/tests_eval.dir/eval/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/tests_eval.dir/eval/evaluator_test.cc.o.d"
  "/root/repo/tests/eval/experiment_test.cc" "tests/CMakeFiles/tests_eval.dir/eval/experiment_test.cc.o" "gcc" "tests/CMakeFiles/tests_eval.dir/eval/experiment_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "tests/CMakeFiles/tests_eval.dir/eval/metrics_test.cc.o" "gcc" "tests/CMakeFiles/tests_eval.dir/eval/metrics_test.cc.o.d"
  "/root/repo/tests/eval/ttest_test.cc" "tests/CMakeFiles/tests_eval.dir/eval/ttest_test.cc.o" "gcc" "tests/CMakeFiles/tests_eval.dir/eval/ttest_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/groupsa_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
