
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/attention_pool_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/attention_pool_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/attention_pool_test.cc.o.d"
  "/root/repo/tests/nn/checkpoint_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/checkpoint_test.cc.o.d"
  "/root/repo/tests/nn/embedding_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/embedding_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/embedding_test.cc.o.d"
  "/root/repo/tests/nn/init_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/init_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/init_test.cc.o.d"
  "/root/repo/tests/nn/layer_norm_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/layer_norm_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/layer_norm_test.cc.o.d"
  "/root/repo/tests/nn/linear_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/linear_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/linear_test.cc.o.d"
  "/root/repo/tests/nn/mlp_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/mlp_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/mlp_test.cc.o.d"
  "/root/repo/tests/nn/optimizer_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/optimizer_test.cc.o.d"
  "/root/repo/tests/nn/self_attention_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/self_attention_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/self_attention_test.cc.o.d"
  "/root/repo/tests/nn/transformer_block_test.cc" "tests/CMakeFiles/tests_nn.dir/nn/transformer_block_test.cc.o" "gcc" "tests/CMakeFiles/tests_nn.dir/nn/transformer_block_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/groupsa_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/groupsa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
