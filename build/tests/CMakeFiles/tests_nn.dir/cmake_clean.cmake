file(REMOVE_RECURSE
  "CMakeFiles/tests_nn.dir/nn/attention_pool_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/attention_pool_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/checkpoint_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/checkpoint_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/embedding_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/embedding_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/init_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/init_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/layer_norm_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/layer_norm_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/linear_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/linear_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/mlp_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/mlp_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/optimizer_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/optimizer_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/self_attention_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/self_attention_test.cc.o.d"
  "CMakeFiles/tests_nn.dir/nn/transformer_block_test.cc.o"
  "CMakeFiles/tests_nn.dir/nn/transformer_block_test.cc.o.d"
  "tests_nn"
  "tests_nn.pdb"
  "tests_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
