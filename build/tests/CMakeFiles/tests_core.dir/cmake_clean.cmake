file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/core/config_test.cc.o"
  "CMakeFiles/tests_core.dir/core/config_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/fast_recommender_test.cc.o"
  "CMakeFiles/tests_core.dir/core/fast_recommender_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/groupsa_model_test.cc.o"
  "CMakeFiles/tests_core.dir/core/groupsa_model_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/predictor_test.cc.o"
  "CMakeFiles/tests_core.dir/core/predictor_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/trainer_test.cc.o"
  "CMakeFiles/tests_core.dir/core/trainer_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/user_modeling_test.cc.o"
  "CMakeFiles/tests_core.dir/core/user_modeling_test.cc.o.d"
  "CMakeFiles/tests_core.dir/core/voting_scheme_test.cc.o"
  "CMakeFiles/tests_core.dir/core/voting_scheme_test.cc.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
