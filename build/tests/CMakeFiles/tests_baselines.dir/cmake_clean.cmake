file(REMOVE_RECURSE
  "CMakeFiles/tests_baselines.dir/baselines/agree_test.cc.o"
  "CMakeFiles/tests_baselines.dir/baselines/agree_test.cc.o.d"
  "CMakeFiles/tests_baselines.dir/baselines/bpr_test.cc.o"
  "CMakeFiles/tests_baselines.dir/baselines/bpr_test.cc.o.d"
  "CMakeFiles/tests_baselines.dir/baselines/ncf_test.cc.o"
  "CMakeFiles/tests_baselines.dir/baselines/ncf_test.cc.o.d"
  "CMakeFiles/tests_baselines.dir/baselines/popularity_test.cc.o"
  "CMakeFiles/tests_baselines.dir/baselines/popularity_test.cc.o.d"
  "CMakeFiles/tests_baselines.dir/baselines/sigr_test.cc.o"
  "CMakeFiles/tests_baselines.dir/baselines/sigr_test.cc.o.d"
  "CMakeFiles/tests_baselines.dir/baselines/static_agg_test.cc.o"
  "CMakeFiles/tests_baselines.dir/baselines/static_agg_test.cc.o.d"
  "tests_baselines"
  "tests_baselines.pdb"
  "tests_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
