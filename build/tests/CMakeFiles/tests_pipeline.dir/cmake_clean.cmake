file(REMOVE_RECURSE
  "CMakeFiles/tests_pipeline.dir/pipeline/experiment_pipeline_test.cc.o"
  "CMakeFiles/tests_pipeline.dir/pipeline/experiment_pipeline_test.cc.o.d"
  "tests_pipeline"
  "tests_pipeline.pdb"
  "tests_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
