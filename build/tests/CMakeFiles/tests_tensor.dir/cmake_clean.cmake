file(REMOVE_RECURSE
  "CMakeFiles/tests_tensor.dir/tensor/matrix_test.cc.o"
  "CMakeFiles/tests_tensor.dir/tensor/matrix_test.cc.o.d"
  "CMakeFiles/tests_tensor.dir/tensor/ops_test.cc.o"
  "CMakeFiles/tests_tensor.dir/tensor/ops_test.cc.o.d"
  "tests_tensor"
  "tests_tensor.pdb"
  "tests_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
