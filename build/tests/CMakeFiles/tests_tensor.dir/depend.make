# Empty dependencies file for tests_tensor.
# This may be replaced when dependencies are built.
