// Quickstart: generate a small synthetic world, train GroupSA, and produce
// Top-K recommendations for a group and for an ad-hoc (cold) group.
//
//   ./example_quickstart
//
// This walks the whole public API: data generation, splitting, TF-IDF
// neighbourhoods, model construction, the two-stage trainer, evaluation and
// recommendation.

#include <cstdio>

#include "core/trainer.h"
#include "data/split.h"
#include "data/synthetic.h"
#include "data/tfidf.h"
#include "eval/evaluator.h"

using namespace groupsa;

int main() {
  // 1. A small world (use YelpLike()/DoubanEventLike() for the full-size
  // evaluation worlds).
  data::SyntheticWorldConfig world_config = data::SyntheticWorldConfig::Tiny();
  world_config.num_users = 300;
  world_config.num_items = 200;
  world_config.num_groups = 220;
  data::SyntheticWorld world = data::GenerateWorld(world_config);
  std::printf("=== dataset ===\n%s\n\n",
              world.dataset.ComputeStats().ToString().c_str());

  // 2. Protocol: per-user split for user-item data, global split for the
  // sparse group-item data (cold groups land in test).
  Rng rng(42);
  data::Split ui = data::SplitEdges(world.dataset.user_item, 0.2, 0.1, &rng);
  data::Split gi =
      data::GlobalSplitEdges(world.dataset.group_item, 0.2, 0.1, &rng);
  data::InteractionMatrix ui_train(world.dataset.num_users,
                                   world.dataset.num_items, ui.train);
  data::InteractionMatrix gi_train(world.dataset.groups.num_groups(),
                                   world.dataset.num_items, gi.train);

  // 3. Model: the paper's defaults, plus the TF-IDF Top-H neighbourhoods
  // computed from the training interactions.
  core::GroupSaConfig config = core::GroupSaConfig::Default();
  config.user_epochs = 5;
  config.group_epochs = 5;
  core::ModelData model_data;
  model_data.groups = &world.dataset.groups;
  model_data.social = &world.dataset.social;
  model_data.top_items = data::TopItemsPerUser(ui_train, config.top_h);
  model_data.top_friends =
      data::TopFriendsPerUser(world.dataset.social, config.top_h);
  core::GroupSaModel model(config, world.dataset.num_users,
                           world.dataset.num_items, model_data, &rng);
  std::printf("model: %lld parameters\n\n",
              static_cast<long long>(model.NumParameterScalars()));

  // 4. Two-stage joint training (Sec. II-E).
  core::Trainer trainer(&model, ui.train, gi.train, &ui_train, &gi_train,
                        &rng);
  trainer.Fit(/*verbose=*/true);

  // 5. Evaluate with the paper's 100-candidate protocol.
  data::InteractionMatrix gi_all = world.dataset.GroupItemMatrix();
  auto cases = eval::BuildRankingCases(gi.test, gi_all, 100, &rng);
  eval::EvalResult result = eval::EvaluateRanking(
      cases,
      [&](int32_t group, const std::vector<data::ItemId>& items) {
        return model.ScoreItemsForGroup(group, items);
      },
      {5, 10});
  std::printf("\ngroup task: %s\n", result.ToString().c_str());

  // 6. Recommend for a known group...
  std::printf("\nTop-5 for group #0 (members:");
  for (data::UserId u : world.dataset.groups.Members(0))
    std::printf(" %d", u);
  std::printf("):\n");
  for (const auto& [item, score] : model.RecommendForGroup(0, 5, &gi_all))
    std::printf("  item #%-4d score %.3f\n", item, score);

  // 7. ...and for a brand-new ad-hoc group (the OGR setting): no group id,
  // just a member list.
  const std::vector<data::UserId> ad_hoc = {5, 17, 101};
  std::printf("\nTop-5 for the ad-hoc group {5, 17, 101}:\n");
  std::vector<data::ItemId> all_items(world.dataset.num_items);
  for (int v = 0; v < world.dataset.num_items; ++v) all_items[v] = v;
  auto scores = model.ScoreItemsForMembers(ad_hoc, all_items);
  std::vector<std::pair<data::ItemId, double>> ranked;
  for (size_t v = 0; v < scores.size(); ++v)
    ranked.emplace_back(static_cast<data::ItemId>(v), scores[v]);
  std::partial_sort(ranked.begin(), ranked.begin() + 5, ranked.end(),
                    [](const auto& a, const auto& b) {
                      return a.second > b.second;
                    });
  for (int i = 0; i < 5; ++i)
    std::printf("  item #%-4d score %.3f\n", ranked[i].first,
                ranked[i].second);
  return 0;
}
