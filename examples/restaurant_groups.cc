// Restaurant scenario (the paper's Yelp motivation): friends who occasionally
// meet pick a restaurant together, and a "food critic" member should
// dominate the choice. This example trains GroupSA on the Yelp-like world,
// then inspects the learned member weights (gamma, Eq. 10) for groups that
// contain a ground-truth expert, checking whether the voting scheme assigns
// experts more influence on their own topic.

#include <cstdio>

#include "pipeline/experiment.h"

using namespace groupsa;

int main(int argc, char** argv) {
  pipeline::RunOptions options = pipeline::ParseBenchArgs(
      argc, argv, pipeline::RunOptions{});
  options.user_epochs = std::min(options.user_epochs, 5);
  options.group_epochs = std::min(options.group_epochs, 6);

  data::SyntheticWorldConfig world_config =
      data::SyntheticWorldConfig::YelpLike();
  world_config.num_users = 600;
  world_config.num_items = 400;
  world_config.num_groups = 420;
  pipeline::ExperimentData data =
      pipeline::PrepareData(world_config, options);

  Rng rng(options.seed + 1);
  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  const core::ModelData model_data = pipeline::BuildModelData(data, config);
  std::printf("training GroupSA on the restaurant world...\n");
  auto model =
      pipeline::TrainGroupSa(config, data, options, &rng, model_data);

  // For every group that contains exactly one expert, compare the expert's
  // attention weight against the uniform share 1/l when the candidate item
  // is on the expert's topic.
  const auto& world = data.world;
  double expert_weight_total = 0.0;
  double uniform_total = 0.0;
  int samples = 0;
  for (data::GroupId g = 0;
       g < world.dataset.groups.num_groups() && samples < 200; ++g) {
    const auto& members = world.dataset.groups.Members(g);
    int expert_pos = -1;
    int expert_count = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (world.user_is_expert[members[i]]) {
        expert_pos = static_cast<int>(i);
        ++expert_count;
      }
    }
    if (expert_count != 1 || members.size() < 3) continue;
    const int expert_topic = world.user_topic[members[expert_pos]];
    // An item on the expert's topic.
    for (data::ItemId v = 0; v < world.dataset.num_items; ++v) {
      if (world.item_topic[v] == expert_topic) {
        const auto detail = model->ScoreGroupItemDetailed(g, v);
        expert_weight_total += detail.member_weights.At(0, expert_pos);
        uniform_total += 1.0 / static_cast<double>(members.size());
        ++samples;
        break;
      }
    }
  }
  std::printf(
      "\nacross %d expert-containing groups, mean attention on the expert "
      "for on-topic items: %.4f (uniform share would be %.4f)\n",
      samples, expert_weight_total / samples, uniform_total / samples);

  // Show one concrete group recommendation.
  for (data::GroupId g = 0; g < world.dataset.groups.num_groups(); ++g) {
    const auto& members = world.dataset.groups.Members(g);
    if (members.size() < 4) continue;
    std::printf("\ngroup #%d (size %zu) — Top-5 restaurants:\n", g,
                members.size());
    const data::InteractionMatrix gi_all = world.dataset.GroupItemMatrix();
    for (const auto& [item, score] : model->RecommendForGroup(g, 5, &gi_all))
      std::printf("  restaurant #%-4d (topic %d) score %.3f\n", item,
                  world.item_topic[item], score);
    break;
  }
  return 0;
}
