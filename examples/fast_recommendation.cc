// Fast group recommendation (Sec. II-F): for large groups, averaging the
// members' blended personal scores trades a little accuracy for a much
// cheaper per-candidate cost than the full voting network. This example
// trains one model and compares the two paths on accuracy and wall-clock.

#include <cstdio>

#include "common/stopwatch.h"
#include "core/fast_recommender.h"
#include "pipeline/experiment.h"

using namespace groupsa;

int main(int argc, char** argv) {
  pipeline::RunOptions options = pipeline::ParseBenchArgs(
      argc, argv, pipeline::RunOptions{});
  options.user_epochs = std::min(options.user_epochs, 5);
  options.group_epochs = std::min(options.group_epochs, 6);

  data::SyntheticWorldConfig world_config =
      data::SyntheticWorldConfig::YelpLike();
  world_config.num_users = 600;
  world_config.num_items = 400;
  world_config.num_groups = 420;
  world_config.max_group_size = 16;
  world_config.avg_group_size = 6.0;
  pipeline::ExperimentData data =
      pipeline::PrepareData(world_config, options);

  Rng rng(options.seed + 1);
  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  const core::ModelData model_data = pipeline::BuildModelData(data, config);
  std::printf("training GroupSA...\n");
  auto model =
      pipeline::TrainGroupSa(config, data, options, &rng, model_data);
  core::FastGroupRecommender fast(model.get());

  // Accuracy: evaluate both paths on the held-out group cases.
  const eval::EvalResult full = eval::EvaluateRanking(
      data.group_cases,
      [&](int32_t g, const std::vector<data::ItemId>& items) {
        return model->ScoreItemsForGroup(g, items);
      },
      options.ks);
  const eval::EvalResult quick = eval::EvaluateRanking(
      data.group_cases,
      [&](int32_t g, const std::vector<data::ItemId>& items) {
        return fast.ScoreItemsForMembers(
            data.world.dataset.groups.Members(g), items);
      },
      options.ks);
  std::printf("\nfull voting path : %s\n", full.ToString().c_str());
  std::printf("fast average path: %s\n", quick.ToString().c_str());

  // Wall-clock: score the full catalog for the largest groups.
  data::GroupId biggest = 0;
  for (data::GroupId g = 1; g < data.num_groups(); ++g) {
    if (data.world.dataset.groups.GroupSize(g) >
        data.world.dataset.groups.GroupSize(biggest))
      biggest = g;
  }
  const auto& members = data.world.dataset.groups.Members(biggest);
  std::vector<data::ItemId> all_items(data.num_items());
  for (int v = 0; v < data.num_items(); ++v) all_items[v] = v;

  Stopwatch w;
  auto s1 = model->ScoreItemsForGroup(biggest, all_items);
  const double full_ms = w.ElapsedMillis();
  w.Reset();
  auto s2 = fast.ScoreItemsForMembers(members, all_items);
  const double fast_ms = w.ElapsedMillis();
  std::printf(
      "\nlargest group (size %zu), %d candidate items:\n"
      "  full voting path %.1f ms, fast path %.1f ms\n",
      members.size(), data.num_items(), full_ms, fast_ms);
  std::printf(
      "\n(The fast path pays one tower pass per member per item; the full "
      "path pays the\nvoting stack once per group plus attention+tower per "
      "item — see bench_micro_model\nfor the crossover by group size.)\n");
  return 0;
}
