// Event-planning scenario (the paper's Douban-Event motivation): attendees
// who met at a conference form an ad-hoc group and need an after-event
// activity. Demonstrates cold-group recommendation: the groups scored here
// never appear in training — only their members' individual histories and
// social ties do.

#include <cstdio>

#include "pipeline/experiment.h"

using namespace groupsa;

int main(int argc, char** argv) {
  pipeline::RunOptions options = pipeline::ParseBenchArgs(
      argc, argv, pipeline::RunOptions{});
  options.user_epochs = std::min(options.user_epochs, 5);
  options.group_epochs = std::min(options.group_epochs, 6);

  data::SyntheticWorldConfig world_config =
      data::SyntheticWorldConfig::DoubanEventLike();
  world_config.num_users = 500;
  world_config.num_items = 400;
  world_config.num_groups = 320;
  pipeline::ExperimentData data =
      pipeline::PrepareData(world_config, options);

  Rng rng(options.seed + 1);
  const core::GroupSaConfig config = core::GroupSaConfig::Default();
  const core::ModelData model_data = pipeline::BuildModelData(data, config);
  std::printf("training GroupSA on the event world...\n");
  auto model =
      pipeline::TrainGroupSa(config, data, options, &rng, model_data);

  // Build three ad-hoc "conference dinner" groups of socially connected
  // users that never co-occur as a training group.
  const auto& social = data.world.dataset.social;
  int built = 0;
  for (data::UserId seed_user = 0;
       seed_user < data.num_users() && built < 3; ++seed_user) {
    const auto& friends = social.Neighbors(seed_user);
    if (friends.size() < 3) continue;
    std::vector<data::UserId> members = {seed_user, friends[0], friends[1],
                                         friends[2]};
    ++built;
    std::printf("\nad-hoc group %d:", built);
    for (data::UserId u : members) std::printf(" user#%d", u);
    std::printf("\n");

    // Score the whole catalog through the voting network and show the top
    // events with the per-member influence on the winning event.
    std::vector<data::ItemId> all_items(data.num_items());
    for (int v = 0; v < data.num_items(); ++v) all_items[v] = v;
    const auto scores = model->ScoreItemsForMembers(members, all_items);
    std::vector<std::pair<data::ItemId, double>> ranked;
    for (size_t v = 0; v < scores.size(); ++v)
      ranked.emplace_back(static_cast<data::ItemId>(v), scores[v]);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (int i = 0; i < 3; ++i)
      std::printf("  event #%-4d score %.3f\n", ranked[i].first,
                  ranked[i].second);

    ag::Tape* no_tape = nullptr;
    auto fwd = model->BuildGroupForwardFromMembers(no_tape, members, false,
                                                   nullptr);
    auto detail =
        model->ScoreGroupItem(no_tape, fwd, ranked[0].first, false, nullptr);
    std::printf("  member influence on the winner:");
    for (int c = 0; c < detail.member_weights.cols(); ++c)
      std::printf(" %.3f", detail.member_weights.At(0, c));
    std::printf("\n");
  }
  return 0;
}
